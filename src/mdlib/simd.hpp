#pragma once

/// \file simd.hpp
/// Width-generic SIMD pack abstraction for the nonbonded inner loops: a
/// `SimdPack<W>` of W doubles with loads/stores, arithmetic, a masked
/// select (the branch-free cutoff test), round-to-nearest (the minimum
/// image), sqrt, and a horizontal reduce. The primary template is a
/// portable lane-loop fallback that compiles on any target; explicit
/// specializations map the same API onto SSE2, AVX2, AVX-512F and NEON
/// intrinsics.
///
/// ODR discipline: this header is included by translation units compiled
/// with *different* -m flags (kernels_sse2.cpp, kernels_avx2.cpp, ...).
/// An inline function shared across such TUs is an ODR trap — the linker
/// keeps one copy, possibly the one compiled with the widest ISA, which
/// then faults on hosts the dispatcher routed away from. Every including
/// TU therefore wraps this header in its own namespace by defining
/// COP_SIMD_ARCH_NS before inclusion (default: `portable`), so all pack
/// code is arch-distinct at the symbol level and nothing leaks across
/// flag boundaries. The intrinsic specializations are double-gated on
/// COP_SIMD_TARGET_<ISA> (the TU asked for them) and the compiler's own
/// feature macro (the TU's flags deliver them): kernels_avx512.cpp also
/// defines __AVX2__, but must not instantiate the AVX2 pack with EVEX
/// codegen under the AVX2 dispatch entry.
///
/// Tolerance note: packs compute the same IEEE double operations as the
/// scalar kernels; results differ from the scalar flavors only through
/// summation order (lane accumulators reduced once at the end) and
/// possible FMA contraction, both bounded by the documented 1e-9 parity
/// tolerance (DESIGN.md "SIMD dispatch & evaluator layer").

#include <cmath>
#include <cstddef>

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#endif

#ifndef COP_SIMD_ARCH_NS
#define COP_SIMD_ARCH_NS portable
#endif

namespace cop::md::simd {
namespace COP_SIMD_ARCH_NS {

/// Portable width-W pack: plain lane loops the auto-vectorizer can fold,
/// and the reference semantics every specialization must match.
template <int W>
struct SimdPack {
    static_assert(W > 0, "pack width must be positive");
    static constexpr int width = W;
    double v[W];

    struct Mask {
        bool m[W];
    };

    static SimdPack zero() {
        SimdPack r;
        for (int l = 0; l < W; ++l) r.v[l] = 0.0;
        return r;
    }
    static SimdPack broadcast(double x) {
        SimdPack r;
        for (int l = 0; l < W; ++l) r.v[l] = x;
        return r;
    }
    /// Unaligned contiguous load (the qq charge-product channel).
    static SimdPack load(const double* p) {
        SimdPack r;
        for (int l = 0; l < W; ++l) r.v[l] = p[l];
        return r;
    }
    void store(double* p) const {
        for (int l = 0; l < W; ++l) p[l] = v[l];
    }
    /// Lane-wise load of W xyz-interleaved triplets: x[l] = xyz[3*idx[l]]
    /// and so on. This is the only indexed access the kernels perform; the
    /// arithmetic itself is gather-free.
    static void gather3(const double* xyz, const int* idx, SimdPack& x,
                        SimdPack& y, SimdPack& z) {
        for (int l = 0; l < W; ++l) {
            const std::size_t j3 = 3 * std::size_t(idx[l]);
            x.v[l] = xyz[j3];
            y.v[l] = xyz[j3 + 1];
            z.v[l] = xyz[j3 + 2];
        }
    }
    /// Lane-wise read-modify-write of W triplets: f[3*idx[l]] -= x[l] and
    /// so on. The callers' j indices are distinct within a run, so the
    /// lanes of one call never alias. The pair kernels' only scattered
    /// store.
    static void scatterSub3(double* f, const int* idx, const SimdPack& x,
                            const SimdPack& y, const SimdPack& z) {
        for (int l = 0; l < W; ++l) {
            const std::size_t j3 = 3 * std::size_t(idx[l]);
            f[j3] -= x.v[l];
            f[j3 + 1] -= y.v[l];
            f[j3 + 2] -= z.v[l];
        }
    }

    friend SimdPack operator+(SimdPack a, SimdPack b) {
        for (int l = 0; l < W; ++l) a.v[l] += b.v[l];
        return a;
    }
    friend SimdPack operator-(SimdPack a, SimdPack b) {
        for (int l = 0; l < W; ++l) a.v[l] -= b.v[l];
        return a;
    }
    friend SimdPack operator*(SimdPack a, SimdPack b) {
        for (int l = 0; l < W; ++l) a.v[l] *= b.v[l];
        return a;
    }
    friend SimdPack operator/(SimdPack a, SimdPack b) {
        for (int l = 0; l < W; ++l) a.v[l] /= b.v[l];
        return a;
    }
    SimdPack& operator+=(SimdPack b) { return *this = *this + b; }

    static SimdPack sqrt(SimdPack a) {
        for (int l = 0; l < W; ++l) a.v[l] = std::sqrt(a.v[l]);
        return a;
    }
    /// 1/a. Exact (IEEE divide) by default; packs whose ISA has a fast
    /// reciprocal estimate override this with estimate + Newton steps
    /// refined to well below the documented 1e-9 SIMD parity tolerance.
    static SimdPack recip(SimdPack a) {
        for (int l = 0; l < W; ++l) a.v[l] = 1.0 / a.v[l];
        return a;
    }
    /// 1/sqrt(a), same contract as recip.
    static SimdPack rsqrt(SimdPack a) {
        for (int l = 0; l < W; ++l) a.v[l] = 1.0 / std::sqrt(a.v[l]);
        return a;
    }
    /// Round to nearest, ties to even — identical to std::rint under the
    /// default rounding mode.
    static SimdPack rint(SimdPack a) {
        for (int l = 0; l < W; ++l) a.v[l] = std::rint(a.v[l]);
        return a;
    }

    static Mask cmpLe(SimdPack a, SimdPack b) {
        Mask r;
        for (int l = 0; l < W; ++l) r.m[l] = a.v[l] <= b.v[l];
        return r;
    }
    static Mask cmpGe(SimdPack a, SimdPack b) {
        Mask r;
        for (int l = 0; l < W; ++l) r.m[l] = a.v[l] >= b.v[l];
        return r;
    }
    static Mask maskAnd(Mask a, Mask b) {
        Mask r;
        for (int l = 0; l < W; ++l) r.m[l] = a.m[l] && b.m[l];
        return r;
    }
    /// Mask with the first `count` lanes active — the kernels' sub-width
    /// run tails are computed as one masked block instead of a scalar
    /// remainder loop.
    static Mask tailMask(int count) {
        Mask r;
        for (int l = 0; l < W; ++l) r.m[l] = l < count;
        return r;
    }
    static SimdPack select(Mask c, SimdPack t, SimdPack f) {
        SimdPack r;
        for (int l = 0; l < W; ++l) r.v[l] = c.m[l] ? t.v[l] : f.v[l];
        return r;
    }

    double hsum() const {
        double s = 0.0;
        for (int l = 0; l < W; ++l) s += v[l];
        return s;
    }
};

#if defined(COP_SIMD_TARGET_SSE2) && defined(__SSE2__)

/// SSE2: two doubles in an XMM register. SSE2 predates roundpd, so rint
/// uses the classic add-2^52 trick (exact round-to-nearest-even for
/// |x| < 2^51 — far beyond the handful of box images the minimum-image
/// fixup ever sees).
template <>
struct SimdPack<2> {
    static constexpr int width = 2;
    __m128d v;

    using Mask = __m128d; ///< all-ones / all-zeros lanes

    static SimdPack wrap(__m128d x) { return SimdPack{x}; }
    static SimdPack zero() { return wrap(_mm_setzero_pd()); }
    static SimdPack broadcast(double x) { return wrap(_mm_set1_pd(x)); }
    static SimdPack load(const double* p) { return wrap(_mm_loadu_pd(p)); }
    void store(double* p) const { _mm_storeu_pd(p, v); }
    static void gather3(const double* xyz, const int* idx, SimdPack& x,
                        SimdPack& y, SimdPack& z) {
        const std::size_t a3 = 3 * std::size_t(idx[0]);
        const std::size_t b3 = 3 * std::size_t(idx[1]);
        // Two (x, y) pair loads + shuffles beat four scalar inserts.
        const __m128d xyA = _mm_loadu_pd(xyz + a3);
        const __m128d xyB = _mm_loadu_pd(xyz + b3);
        x = wrap(_mm_unpacklo_pd(xyA, xyB));
        y = wrap(_mm_unpackhi_pd(xyA, xyB));
        z = wrap(_mm_set_pd(xyz[b3 + 2], xyz[a3 + 2]));
    }
    static void scatterSub3(double* f, const int* idx, const SimdPack& x,
                            const SimdPack& y, const SimdPack& z) {
        // Inverse of gather3: recombine lanes into per-j (x, y) pairs and
        // read-modify-write them as vectors — no stack round-trip, which
        // would stall on vector-store-to-scalar-load forwarding.
        const __m128d t0 = _mm_unpacklo_pd(x.v, y.v);
        const __m128d t1 = _mm_unpackhi_pd(x.v, y.v);
        double* a = f + 3 * std::size_t(idx[0]);
        _mm_storeu_pd(a, _mm_sub_pd(_mm_loadu_pd(a), t0));
        a[2] -= _mm_cvtsd_f64(z.v);
        double* b = f + 3 * std::size_t(idx[1]);
        _mm_storeu_pd(b, _mm_sub_pd(_mm_loadu_pd(b), t1));
        b[2] -= _mm_cvtsd_f64(_mm_unpackhi_pd(z.v, z.v));
    }

    friend SimdPack operator+(SimdPack a, SimdPack b) {
        return wrap(_mm_add_pd(a.v, b.v));
    }
    friend SimdPack operator-(SimdPack a, SimdPack b) {
        return wrap(_mm_sub_pd(a.v, b.v));
    }
    friend SimdPack operator*(SimdPack a, SimdPack b) {
        return wrap(_mm_mul_pd(a.v, b.v));
    }
    friend SimdPack operator/(SimdPack a, SimdPack b) {
        return wrap(_mm_div_pd(a.v, b.v));
    }
    SimdPack& operator+=(SimdPack b) { return *this = *this + b; }

    static SimdPack sqrt(SimdPack a) { return wrap(_mm_sqrt_pd(a.v)); }
    static SimdPack recip(SimdPack a) {
        return wrap(_mm_div_pd(_mm_set1_pd(1.0), a.v));
    }
    static SimdPack rsqrt(SimdPack a) {
        return wrap(_mm_div_pd(_mm_set1_pd(1.0), _mm_sqrt_pd(a.v)));
    }
    static SimdPack rint(SimdPack a) {
        const __m128d two52 = _mm_set1_pd(4503599627370496.0); // 2^52
        const __m128d signMask = _mm_set1_pd(-0.0);
        const __m128d sign = _mm_and_pd(a.v, signMask);
        // Fold the sign so the magic constant rounds the magnitude, then
        // restore it: rint(-x) == -rint(x) for ties-to-even.
        const __m128d mag = _mm_andnot_pd(signMask, a.v);
        const __m128d rounded =
            _mm_sub_pd(_mm_add_pd(mag, two52), two52);
        return wrap(_mm_or_pd(rounded, sign));
    }

    static Mask cmpLe(SimdPack a, SimdPack b) { return _mm_cmple_pd(a.v, b.v); }
    static Mask cmpGe(SimdPack a, SimdPack b) { return _mm_cmpge_pd(a.v, b.v); }
    static Mask maskAnd(Mask a, Mask b) { return _mm_and_pd(a, b); }
    static Mask tailMask(int count) {
        return _mm_cmplt_pd(_mm_setr_pd(0.0, 1.0), _mm_set1_pd(double(count)));
    }
    static SimdPack select(Mask c, SimdPack t, SimdPack f) {
        return wrap(_mm_or_pd(_mm_and_pd(c, t.v), _mm_andnot_pd(c, f.v)));
    }

    double hsum() const {
        const __m128d hi = _mm_unpackhi_pd(v, v);
        return _mm_cvtsd_f64(_mm_add_sd(v, hi));
    }
};

#endif // SSE2

#if defined(COP_SIMD_TARGET_AVX2) && defined(__AVX2__)

/// AVX2: four doubles in a YMM register. The xyz-interleaved layout makes
/// each j's coordinates contiguous, so j-triplet access is four plain
/// 4-double loads plus an in-register 4x3 transpose — measurably faster
/// than three vgatherdpd. The force scatter runs the transpose in reverse
/// and read-modify-writes whole 4-double slots with the 4th lane's delta
/// zeroed, so the extra double is written back unchanged. Plain (not
/// masked) accesses are deliberate twice over: vmaskmovpd stores never
/// forward to later loads, and neighbouring runs revisit the same j
/// triplets within a few cycles, so masked RMW stalled every block; and
/// the over-reach past the last triplet is in-bounds because the force
/// workspace pads its arrays (see ForceWorkspace::ensure).
template <>
struct SimdPack<4> {
    static constexpr int width = 4;
    __m256d v;

    using Mask = __m256d;

    static SimdPack wrap(__m256d x) { return SimdPack{x}; }
    static SimdPack zero() { return wrap(_mm256_setzero_pd()); }
    static SimdPack broadcast(double x) { return wrap(_mm256_set1_pd(x)); }
    static SimdPack load(const double* p) { return wrap(_mm256_loadu_pd(p)); }
    void store(double* p) const { _mm256_storeu_pd(p, v); }
    static void gather3(const double* xyz, const int* idx, SimdPack& x,
                        SimdPack& y, SimdPack& z) {
        // Full 4-double loads; each a_l's 4th lane lands only in the
        // transpose outputs we never form, so the over-read is discarded.
        const __m256d a0 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[0]));
        const __m256d a1 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[1]));
        const __m256d a2 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[2]));
        const __m256d a3 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[3]));
        const __m256d t0 = _mm256_unpacklo_pd(a0, a1); // x0 x1 z0 z1
        const __m256d t1 = _mm256_unpackhi_pd(a0, a1); // y0 y1 .  .
        const __m256d t2 = _mm256_unpacklo_pd(a2, a3); // x2 x3 z2 z3
        const __m256d t3 = _mm256_unpackhi_pd(a2, a3); // y2 y3 .  .
        x = wrap(_mm256_permute2f128_pd(t0, t2, 0x20));
        y = wrap(_mm256_permute2f128_pd(t1, t3, 0x20));
        z = wrap(_mm256_permute2f128_pd(t0, t2, 0x31));
    }
    static void scatterSub3(double* f, const int* idx, const SimdPack& x,
                            const SimdPack& y, const SimdPack& z) {
        // Per-lane 16-byte (x, y) + 8-byte z read-modify-writes, never a
        // 32-byte slot. Cell-ordered slots make consecutive lanes' j
        // triplets adjacent, and a 32-byte store at 3j partially overlaps
        // the next lane's 32-byte load at 3(j+1) = 3j + 3 — partial
        // overlap defeats store-to-load forwarding and stalled every
        // block. Exact-width accesses to distinct j either don't overlap
        // at all (adjacent j) or overlap exactly across runs revisiting
        // the same j, both of which forward.
        const __m256d t0 = _mm256_unpacklo_pd(x.v, y.v); // fx0 fy0 fx2 fy2
        const __m256d t1 = _mm256_unpackhi_pd(x.v, y.v); // fx1 fy1 fx3 fy3
        const __m128d zlo = _mm256_castpd256_pd128(z.v); // fz0 fz1
        const __m128d zhi = _mm256_extractf128_pd(z.v, 1); // fz2 fz3
        double* p0 = f + 3 * std::size_t(idx[0]);
        _mm_storeu_pd(p0, _mm_sub_pd(_mm_loadu_pd(p0),
                                     _mm256_castpd256_pd128(t0)));
        p0[2] -= _mm_cvtsd_f64(zlo);
        double* p1 = f + 3 * std::size_t(idx[1]);
        _mm_storeu_pd(p1, _mm_sub_pd(_mm_loadu_pd(p1),
                                     _mm256_castpd256_pd128(t1)));
        p1[2] -= _mm_cvtsd_f64(_mm_unpackhi_pd(zlo, zlo));
        double* p2 = f + 3 * std::size_t(idx[2]);
        _mm_storeu_pd(p2, _mm_sub_pd(_mm_loadu_pd(p2),
                                     _mm256_extractf128_pd(t0, 1)));
        p2[2] -= _mm_cvtsd_f64(zhi);
        double* p3 = f + 3 * std::size_t(idx[3]);
        _mm_storeu_pd(p3, _mm_sub_pd(_mm_loadu_pd(p3),
                                     _mm256_extractf128_pd(t1, 1)));
        p3[2] -= _mm_cvtsd_f64(_mm_unpackhi_pd(zhi, zhi));
    }

    friend SimdPack operator+(SimdPack a, SimdPack b) {
        return wrap(_mm256_add_pd(a.v, b.v));
    }
    friend SimdPack operator-(SimdPack a, SimdPack b) {
        return wrap(_mm256_sub_pd(a.v, b.v));
    }
    friend SimdPack operator*(SimdPack a, SimdPack b) {
        return wrap(_mm256_mul_pd(a.v, b.v));
    }
    friend SimdPack operator/(SimdPack a, SimdPack b) {
        return wrap(_mm256_div_pd(a.v, b.v));
    }
    SimdPack& operator+=(SimdPack b) { return *this = *this + b; }

    static SimdPack sqrt(SimdPack a) { return wrap(_mm256_sqrt_pd(a.v)); }
    static SimdPack recip(SimdPack a) {
        return wrap(_mm256_div_pd(_mm256_set1_pd(1.0), a.v));
    }
    static SimdPack rsqrt(SimdPack a) {
        return wrap(_mm256_div_pd(_mm256_set1_pd(1.0), _mm256_sqrt_pd(a.v)));
    }
    static SimdPack rint(SimdPack a) {
        return wrap(_mm256_round_pd(
            a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    }

    static Mask cmpLe(SimdPack a, SimdPack b) {
        return _mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ);
    }
    static Mask cmpGe(SimdPack a, SimdPack b) {
        return _mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ);
    }
    static Mask maskAnd(Mask a, Mask b) { return _mm256_and_pd(a, b); }
    static Mask tailMask(int count) {
        return _mm256_cmp_pd(_mm256_setr_pd(0.0, 1.0, 2.0, 3.0),
                             _mm256_set1_pd(double(count)), _CMP_LT_OQ);
    }
    static SimdPack select(Mask c, SimdPack t, SimdPack f) {
        return wrap(_mm256_blendv_pd(f.v, t.v, c));
    }

    double hsum() const {
        const __m128d lo = _mm256_castpd256_pd128(v);
        const __m128d hi = _mm256_extractf128_pd(v, 1);
        const __m128d s = _mm_add_pd(lo, hi);
        return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    }
};

#endif // AVX2

#if defined(COP_SIMD_TARGET_AVX512) && defined(__AVX512F__)

/// AVX-512F: eight doubles in a ZMM register with native predication —
/// the cutoff mask lives in a k-register instead of a blend vector.
/// Triplet access works on 256-bit halves (full 4-double loads plus a
/// 4x3 transpose per half, see the AVX2 pack) rather than vgatherdpd:
/// three zmm gathers cost ~40 cycles per block on Skylake-X/Ice Lake
/// derivatives, more than the entire pair arithmetic. -mavx512f implies
/// AVX2 codegen, so the ymm intrinsics are available here.
template <>
struct SimdPack<8> {
    static constexpr int width = 8;
    __m512d v;

    using Mask = __mmask8;

    static SimdPack wrap(__m512d x) { return SimdPack{x}; }
    static SimdPack zero() { return wrap(_mm512_setzero_pd()); }
    static SimdPack broadcast(double x) { return wrap(_mm512_set1_pd(x)); }
    static SimdPack load(const double* p) { return wrap(_mm512_loadu_pd(p)); }
    void store(double* p) const { _mm512_storeu_pd(p, v); }
    static void gatherHalf3(const double* xyz, const int* idx, __m256d& x,
                            __m256d& y, __m256d& z) {
        const __m256d a0 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[0]));
        const __m256d a1 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[1]));
        const __m256d a2 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[2]));
        const __m256d a3 = _mm256_loadu_pd(xyz + 3 * std::size_t(idx[3]));
        const __m256d t0 = _mm256_unpacklo_pd(a0, a1);
        const __m256d t1 = _mm256_unpackhi_pd(a0, a1);
        const __m256d t2 = _mm256_unpacklo_pd(a2, a3);
        const __m256d t3 = _mm256_unpackhi_pd(a2, a3);
        x = _mm256_permute2f128_pd(t0, t2, 0x20);
        y = _mm256_permute2f128_pd(t1, t3, 0x20);
        z = _mm256_permute2f128_pd(t0, t2, 0x31);
    }
    static void gather3(const double* xyz, const int* idx, SimdPack& x,
                        SimdPack& y, SimdPack& z) {
        __m256d xl, yl, zl, xh, yh, zh;
        gatherHalf3(xyz, idx, xl, yl, zl);
        gatherHalf3(xyz, idx + 4, xh, yh, zh);
        x = wrap(_mm512_insertf64x4(_mm512_castpd256_pd512(xl), xh, 1));
        y = wrap(_mm512_insertf64x4(_mm512_castpd256_pd512(yl), yh, 1));
        z = wrap(_mm512_insertf64x4(_mm512_castpd256_pd512(zl), zh, 1));
    }
    static void scatterHalf3(double* f, const int* idx, __m256d x,
                             __m256d y, __m256d z) {
        // Same exact-width (16-byte xy + 8-byte z) RMW shape as the AVX2
        // pack's scatterSub3: a 32-byte slot store would partially
        // overlap the next lane's load when j triplets are adjacent
        // (the common case in cell order), defeating store forwarding.
        const __m256d t0 = _mm256_unpacklo_pd(x, y);
        const __m256d t1 = _mm256_unpackhi_pd(x, y);
        const __m128d zlo = _mm256_castpd256_pd128(z);
        const __m128d zhi = _mm256_extractf128_pd(z, 1);
        double* p0 = f + 3 * std::size_t(idx[0]);
        _mm_storeu_pd(p0, _mm_sub_pd(_mm_loadu_pd(p0),
                                     _mm256_castpd256_pd128(t0)));
        p0[2] -= _mm_cvtsd_f64(zlo);
        double* p1 = f + 3 * std::size_t(idx[1]);
        _mm_storeu_pd(p1, _mm_sub_pd(_mm_loadu_pd(p1),
                                     _mm256_castpd256_pd128(t1)));
        p1[2] -= _mm_cvtsd_f64(_mm_unpackhi_pd(zlo, zlo));
        double* p2 = f + 3 * std::size_t(idx[2]);
        _mm_storeu_pd(p2, _mm_sub_pd(_mm_loadu_pd(p2),
                                     _mm256_extractf128_pd(t0, 1)));
        p2[2] -= _mm_cvtsd_f64(zhi);
        double* p3 = f + 3 * std::size_t(idx[3]);
        _mm_storeu_pd(p3, _mm_sub_pd(_mm_loadu_pd(p3),
                                     _mm256_extractf128_pd(t1, 1)));
        p3[2] -= _mm_cvtsd_f64(_mm_unpackhi_pd(zhi, zhi));
    }
    static void scatterSub3(double* f, const int* idx, const SimdPack& x,
                            const SimdPack& y, const SimdPack& z) {
        scatterHalf3(f, idx, _mm512_castpd512_pd256(x.v),
                     _mm512_castpd512_pd256(y.v),
                     _mm512_castpd512_pd256(z.v));
        scatterHalf3(f, idx + 4, _mm512_extractf64x4_pd(x.v, 1),
                     _mm512_extractf64x4_pd(y.v, 1),
                     _mm512_extractf64x4_pd(z.v, 1));
    }

    friend SimdPack operator+(SimdPack a, SimdPack b) {
        return wrap(_mm512_add_pd(a.v, b.v));
    }
    friend SimdPack operator-(SimdPack a, SimdPack b) {
        return wrap(_mm512_sub_pd(a.v, b.v));
    }
    friend SimdPack operator*(SimdPack a, SimdPack b) {
        return wrap(_mm512_mul_pd(a.v, b.v));
    }
    friend SimdPack operator/(SimdPack a, SimdPack b) {
        return wrap(_mm512_div_pd(a.v, b.v));
    }
    SimdPack& operator+=(SimdPack b) { return *this = *this + b; }

    static SimdPack sqrt(SimdPack a) { return wrap(_mm512_sqrt_pd(a.v)); }
    /// vdivpd/vsqrtpd on a full ZMM cost ~16/~31 cycles of throughput on
    /// Skylake-X derivatives — longer than the rest of the pair math — so
    /// the divides use vrcp14pd/vrsqrt14pd (2^-14 relative error) refined
    /// by two Newton steps to ~1 ulp, far inside the 1e-9 parity
    /// tolerance. Inputs are clamped to [minR2, cut2] by the kernels'
    /// cutoff select, so the estimates never see 0 or infinity.
    static SimdPack recip(SimdPack a) {
        const __m512d two = _mm512_set1_pd(2.0);
        __m512d x = _mm512_rcp14_pd(a.v);
        x = _mm512_mul_pd(x, _mm512_fnmadd_pd(a.v, x, two));
        x = _mm512_mul_pd(x, _mm512_fnmadd_pd(a.v, x, two));
        return wrap(x);
    }
    static SimdPack rsqrt(SimdPack a) {
        // x' = 0.5 * x * (3 - a * x^2), twice.
        const __m512d half = _mm512_set1_pd(0.5);
        const __m512d three = _mm512_set1_pd(3.0);
        __m512d x = _mm512_rsqrt14_pd(a.v);
        x = _mm512_mul_pd(
            _mm512_mul_pd(x, half),
            _mm512_fnmadd_pd(a.v, _mm512_mul_pd(x, x), three));
        x = _mm512_mul_pd(
            _mm512_mul_pd(x, half),
            _mm512_fnmadd_pd(a.v, _mm512_mul_pd(x, x), three));
        return wrap(x);
    }
    static SimdPack rint(SimdPack a) {
        return wrap(_mm512_roundscale_pd(
            a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    }

    static Mask cmpLe(SimdPack a, SimdPack b) {
        return _mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ);
    }
    static Mask cmpGe(SimdPack a, SimdPack b) {
        return _mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ);
    }
    static Mask maskAnd(Mask a, Mask b) {
        return static_cast<Mask>(a & b);
    }
    static Mask tailMask(int count) {
        return static_cast<Mask>((1u << count) - 1u);
    }
    static SimdPack select(Mask c, SimdPack t, SimdPack f) {
        return wrap(_mm512_mask_blend_pd(c, f.v, t.v));
    }

    double hsum() const { return _mm512_reduce_add_pd(v); }
};

#endif // AVX512F

#if defined(COP_SIMD_TARGET_NEON) && defined(__ARM_NEON) && \
    defined(__aarch64__)

/// NEON (AArch64): two doubles per vector; double-precision divide,
/// sqrt and round-to-nearest-even are all native A64 instructions.
template <>
struct SimdPack<2> {
    static constexpr int width = 2;
    float64x2_t v;

    using Mask = uint64x2_t;

    static SimdPack wrap(float64x2_t x) { return SimdPack{x}; }
    static SimdPack zero() { return wrap(vdupq_n_f64(0.0)); }
    static SimdPack broadcast(double x) { return wrap(vdupq_n_f64(x)); }
    static SimdPack load(const double* p) { return wrap(vld1q_f64(p)); }
    void store(double* p) const { vst1q_f64(p, v); }
    static void gather3(const double* xyz, const int* idx, SimdPack& x,
                        SimdPack& y, SimdPack& z) {
        const std::size_t a3 = 3 * std::size_t(idx[0]);
        const std::size_t b3 = 3 * std::size_t(idx[1]);
        const float64x2_t xyA = vld1q_f64(xyz + a3);
        const float64x2_t xyB = vld1q_f64(xyz + b3);
        x = wrap(vzip1q_f64(xyA, xyB));
        y = wrap(vzip2q_f64(xyA, xyB));
        float64x2_t zz = vdupq_n_f64(xyz[a3 + 2]);
        zz = vsetq_lane_f64(xyz[b3 + 2], zz, 1);
        z = wrap(zz);
    }
    static void scatterSub3(double* f, const int* idx, const SimdPack& x,
                            const SimdPack& y, const SimdPack& z) {
        const float64x2_t t0 = vzip1q_f64(x.v, y.v);
        const float64x2_t t1 = vzip2q_f64(x.v, y.v);
        double* a = f + 3 * std::size_t(idx[0]);
        vst1q_f64(a, vsubq_f64(vld1q_f64(a), t0));
        a[2] -= vgetq_lane_f64(z.v, 0);
        double* b = f + 3 * std::size_t(idx[1]);
        vst1q_f64(b, vsubq_f64(vld1q_f64(b), t1));
        b[2] -= vgetq_lane_f64(z.v, 1);
    }

    friend SimdPack operator+(SimdPack a, SimdPack b) {
        return wrap(vaddq_f64(a.v, b.v));
    }
    friend SimdPack operator-(SimdPack a, SimdPack b) {
        return wrap(vsubq_f64(a.v, b.v));
    }
    friend SimdPack operator*(SimdPack a, SimdPack b) {
        return wrap(vmulq_f64(a.v, b.v));
    }
    friend SimdPack operator/(SimdPack a, SimdPack b) {
        return wrap(vdivq_f64(a.v, b.v));
    }
    SimdPack& operator+=(SimdPack b) { return *this = *this + b; }

    static SimdPack sqrt(SimdPack a) { return wrap(vsqrtq_f64(a.v)); }
    static SimdPack recip(SimdPack a) {
        return wrap(vdivq_f64(vdupq_n_f64(1.0), a.v));
    }
    static SimdPack rsqrt(SimdPack a) {
        return wrap(vdivq_f64(vdupq_n_f64(1.0), vsqrtq_f64(a.v)));
    }
    static SimdPack rint(SimdPack a) { return wrap(vrndnq_f64(a.v)); }

    static Mask cmpLe(SimdPack a, SimdPack b) { return vcleq_f64(a.v, b.v); }
    static Mask cmpGe(SimdPack a, SimdPack b) { return vcgeq_f64(a.v, b.v); }
    static Mask maskAnd(Mask a, Mask b) { return vandq_u64(a, b); }
    static Mask tailMask(int count) {
        const float64x2_t lanes = vsetq_lane_f64(1.0, vdupq_n_f64(0.0), 1);
        return vcltq_f64(lanes, vdupq_n_f64(double(count)));
    }
    static SimdPack select(Mask c, SimdPack t, SimdPack f) {
        return wrap(vbslq_f64(c, t.v, f.v));
    }

    double hsum() const { return vaddvq_f64(v); }
};

#endif // NEON

} // namespace COP_SIMD_ARCH_NS
} // namespace cop::md::simd
