#include "mdlib/gomodel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cop::md {

namespace {

double angleBetween(const Vec3& a, const Vec3& b, const Vec3& c) {
    const Vec3 u = a - b;
    const Vec3 v = c - b;
    const double d = dot(u, v) / (norm(u) * norm(v));
    return std::acos(std::clamp(d, -1.0, 1.0));
}

double dihedralAngle(const Vec3& a, const Vec3& b, const Vec3& c,
                     const Vec3& d) {
    const Vec3 b1 = b - a;
    const Vec3 b2 = c - b;
    const Vec3 b3 = d - c;
    const Vec3 n1 = cross(b1, b2);
    const Vec3 n2 = cross(b2, b3);
    const double b2len = norm(b2);
    if (norm2(n1) < 1e-12 || norm2(n2) < 1e-12 || b2len < 1e-12) return 0.0;
    return std::atan2(dot(cross(n1, n2), b2) / b2len, dot(n1, n2));
}

} // namespace

ForceFieldParams GoModel::forceFieldParams() const {
    ForceFieldParams p;
    p.kind = NonbondedKind::GoRepulsive;
    p.cutoff = params.nonbondedCutoff;
    p.repEpsilon = params.repulsiveEpsilon;
    p.repSigma = params.repulsiveSigma;
    return p;
}

GoModel buildGoModel(const std::vector<Vec3>& native,
                     const GoModelParams& params) {
    COP_REQUIRE(native.size() >= 4, "Gō model needs at least 4 residues");
    GoModel model;
    model.native = native;
    model.params = params;

    Topology top;
    for (std::size_t i = 0; i < native.size(); ++i)
        top.addParticle(params.mass);

    const int n = int(native.size());
    for (int i = 0; i + 1 < n; ++i) {
        const double r0 = distance(native[std::size_t(i)],
                                   native[std::size_t(i + 1)]);
        top.addBond({i, i + 1, r0, params.bondK});
    }
    for (int i = 0; i + 2 < n; ++i) {
        const double theta0 =
            angleBetween(native[std::size_t(i)], native[std::size_t(i + 1)],
                         native[std::size_t(i + 2)]);
        top.addAngle({i, i + 1, i + 2, theta0, params.angleK});
    }
    for (int i = 0; i + 3 < n; ++i) {
        const double phi0 = dihedralAngle(
            native[std::size_t(i)], native[std::size_t(i + 1)],
            native[std::size_t(i + 2)], native[std::size_t(i + 3)]);
        top.addDihedral(
            {i, i + 1, i + 2, i + 3, phi0, params.dihedralK1, params.dihedralK3});
    }
    for (int i = 0; i < n; ++i) {
        for (int j = i + params.minSequenceSeparation; j < n; ++j) {
            const double r0 = distance(native[std::size_t(i)],
                                       native[std::size_t(j)]);
            if (r0 < params.contactCutoff)
                top.addContact({i, j, r0, params.contactEpsilon});
        }
    }
    top.finalize();
    model.topology = std::move(top);
    return model;
}

} // namespace cop::md
