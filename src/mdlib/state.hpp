#pragma once

/// \file state.hpp
/// Dynamic state of a simulation: positions, velocities, forces, step count
/// and integrator extras (thermostat variables). Serializable — this is the
/// checkpoint payload that Copernicus workers hand back to servers so a
/// different worker can transparently continue a command (paper §2.3).

#include <cstdint>
#include <vector>

#include "util/serialize.hpp"
#include "util/vec3.hpp"

namespace cop::md {

struct State {
    std::vector<Vec3> positions;
    std::vector<Vec3> velocities;
    std::vector<Vec3> forces;
    std::int64_t step = 0;
    double time = 0.0;
    /// Nosé-Hoover extended variable (xi) and its conjugate; unused by other
    /// integrators but checkpointed so restarts are exact.
    double nhXi = 0.0;
    double nhEta = 0.0;

    std::size_t numParticles() const { return positions.size(); }

    /// Resizes all arrays to n, zero-filling velocities and forces.
    void resize(std::size_t n);

    void serialize(BinaryWriter& w) const;
    static State deserialize(BinaryReader& r);

    bool operator==(const State& other) const;
};

} // namespace cop::md
