#pragma once

/// \file integrators.hpp
/// Time integration: velocity Verlet and leapfrog for NVE/NVT, BAOAB
/// Langevin dynamics for the Gō model, and three thermostats (Nosé-Hoover,
/// Bussi v-rescale, Berendsen). The paper's villin runs used a Nosé-Hoover
/// thermostat with a 0.5 ps oscillation period; our reproductions default
/// to Langevin for the coarse-grained model (standard for Gō potentials)
/// and exercise Nosé-Hoover in tests and the generic LJ engine.

#include <memory>

#include "mdlib/forcefield.hpp"
#include "mdlib/state.hpp"
#include "util/random.hpp"

namespace cop::md {

enum class IntegratorKind { VelocityVerlet, Leapfrog, LangevinBAOAB };
enum class ThermostatKind { None, NoseHoover, VRescale, Berendsen };
enum class BarostatKind { None, Berendsen };

struct IntegratorParams {
    IntegratorKind kind = IntegratorKind::LangevinBAOAB;
    double dt = 0.01;

    // Thermostat settings (ignored for LangevinBAOAB, which thermostats
    // itself through the friction term).
    ThermostatKind thermostat = ThermostatKind::None;
    double temperature = 1.0; ///< target T in reduced units
    double tauT = 0.5;        ///< thermostat coupling time

    // Langevin friction (gamma, inverse time units).
    double friction = 0.5;

    // Berendsen pressure coupling (requires a periodic box; pressure is
    // computed from the pair virial).
    BarostatKind barostat = BarostatKind::None;
    double pressure = 1.0;        ///< target pressure, reduced units
    double tauP = 2.0;            ///< pressure coupling time
    double compressibility = 0.05;///< isothermal compressibility kappa
};

/// Kinetic energy sum(0.5 m v^2).
double kineticEnergy(const Topology& top, const State& state);

/// Instantaneous temperature 2K / Nf in kB = 1 units, with
/// Nf = 3N - removedDof. Use the default (3, COM momentum removed) for
/// NVE/thermostatted dynamics started from assignVelocities; pass 0 for
/// Langevin dynamics, whose noise re-injects COM motion.
double instantaneousTemperature(const Topology& top, const State& state,
                                int removedDof = 3);

/// Removes the center-of-mass momentum.
void removeCenterOfMassMotion(const Topology& top, State& state);

/// Assigns Maxwell-Boltzmann velocities at temperature T and removes COM
/// drift.
void assignVelocities(const Topology& top, State& state, double temperature,
                      Rng& rng);

/// FIRE (Fast Inertial Relaxation Engine, Bitzek et al., PRL 97 170201)
/// energy minimization: damped dynamics with unit masses where the
/// velocity is steered toward the force direction, the time step grows
/// while the system keeps moving downhill (P = F·v > 0) and is cut with
/// velocities zeroed the moment it moves uphill. Used to relax hostile
/// starting structures server-side before production MD (bad contacts
/// from modelled or perturbed inputs make the first steps explode).
struct FireParams {
    double dtInit = 0.002;  ///< initial (and post-reset) time step
    double dtMax = 0.02;    ///< F3 growth cap
    double forceTol = 1e-4; ///< converged when max_i |F_i| < forceTol
    std::int64_t maxSteps = 100000;
    int nMin = 5;            ///< downhill steps before dt may grow
    double fInc = 1.1;       ///< dt growth factor
    double fDec = 0.5;       ///< dt cut factor on uphill
    double alphaStart = 0.1; ///< steering mix after a reset
    double fAlpha = 0.99;    ///< steering decay per downhill step
    double maxDisp = 0.1;    ///< per-step displacement clamp (per atom)
};

struct FireResult {
    bool converged = false;
    std::int64_t steps = 0;   ///< force evaluations beyond the initial one
    double maxForce = 0.0;    ///< max_i |F_i| at exit
    Energies energies;        ///< energies at the final positions
};

/// Minimizes the potential in place; `positions` holds the relaxed
/// structure on return. The displacement clamp keeps the very first
/// steps of an overlapping structure finite, where the raw forces can
/// be astronomically large.
FireResult fireMinimize(ForceField& ff, std::vector<Vec3>& positions,
                        const FireParams& params = {});

class Integrator {
public:
    Integrator(ForceField& ff, IntegratorParams params, Rng rng);

    /// Advances `state` by n steps, keeping state.forces consistent with
    /// state.positions on exit. Accumulates energies of the last step.
    void run(State& state, std::int64_t nSteps);

    /// Energies from the most recent force evaluation.
    const Energies& lastEnergies() const { return lastEnergies_; }

    const IntegratorParams& params() const { return params_; }
    Rng& rng() { return rng_; }

    /// Conserved quantity for NVE / Nosé-Hoover runs: E_kin + E_pot
    /// (+ thermostat terms). Used by drift tests.
    double conservedQuantity(const State& state) const;

    /// Instantaneous pressure from the last force evaluation.
    double pressure(const State& state) const;

private:
    void stepVelocityVerlet(State& state);
    void stepLeapfrog(State& state);
    void stepLangevinBAOAB(State& state);
    void applyNoseHooverHalf(State& state, double halfDt);
    void applyBerendsenBarostat(State& state);
    void applyVRescale(State& state);
    void applyBerendsen(State& state);

    ForceField& ff_;
    IntegratorParams params_;
    Rng rng_;
    Energies lastEnergies_;
    bool forcesValid_ = false;
};

} // namespace cop::md
