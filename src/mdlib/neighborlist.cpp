#include "mdlib/neighborlist.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cop::md {

NeighborList::NeighborList(double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
    COP_REQUIRE(cutoff > 0.0, "cutoff must be positive");
    COP_REQUIRE(skin >= 0.0, "skin must be non-negative");
}

void NeighborList::build(const Topology& top, const Box& box,
                         const std::vector<Vec3>& positions) {
    COP_REQUIRE(top.finalized(), "topology must be finalized");
    COP_REQUIRE(positions.size() == top.numParticles(),
                "positions size mismatch");
    pairs_.clear();

    const double listCut = cutoff_ + skin_;
    // A cell grid only pays off when the box supports >= 3 cells per
    // dimension; otherwise fall back to the O(N^2) build (fine for the
    // 35-bead protein).
    bool useCells = box.periodic;
    if (useCells) {
        for (int d = 0; d < 3; ++d)
            if (box.lengths[d] < 3.0 * listCut) useCells = false;
    }
    if (useCells)
        buildCellList(top, box, positions);
    else
        buildBruteForce(top, box, positions);

    referencePositions_ = positions;
    ++numBuilds_;
}

bool NeighborList::update(const Topology& top, const Box& box,
                          const std::vector<Vec3>& positions) {
    if (referencePositions_.size() != positions.size()) {
        build(top, box, positions);
        return true;
    }
    const double limit2 = 0.25 * skin_ * skin_;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        const Vec3 d = box.minimumImage(positions[i], referencePositions_[i]);
        if (norm2(d) > limit2) {
            build(top, box, positions);
            return true;
        }
    }
    return false;
}

void NeighborList::buildBruteForce(const Topology& top, const Box& box,
                                   const std::vector<Vec3>& positions) {
    const int n = int(positions.size());
    const double cut2 = (cutoff_ + skin_) * (cutoff_ + skin_);
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            if (top.isExcluded(i, j)) continue;
            const Vec3 d =
                box.minimumImage(positions[std::size_t(i)],
                                 positions[std::size_t(j)]);
            if (norm2(d) <= cut2) pairs_.push_back({i, j});
        }
    }
}

void NeighborList::buildCellList(const Topology& top, const Box& box,
                                 const std::vector<Vec3>& positions) {
    const double listCut = cutoff_ + skin_;
    const double cut2 = listCut * listCut;
    int nc[3];
    double cellLen[3];
    for (int d = 0; d < 3; ++d) {
        nc[d] = std::max(3, int(box.lengths[d] / listCut));
        cellLen[d] = box.lengths[d] / nc[d];
    }
    const int totalCells = nc[0] * nc[1] * nc[2];
    std::vector<std::vector<int>> cells(static_cast<std::size_t>(totalCells));

    auto cellIndex = [&](const Vec3& p) {
        const Vec3 w = box.wrap(p);
        int ix = std::min(nc[0] - 1, int(w.x / cellLen[0]));
        int iy = std::min(nc[1] - 1, int(w.y / cellLen[1]));
        int iz = std::min(nc[2] - 1, int(w.z / cellLen[2]));
        return (ix * nc[1] + iy) * nc[2] + iz;
    };

    for (std::size_t i = 0; i < positions.size(); ++i)
        cells[std::size_t(cellIndex(positions[i]))].push_back(int(i));

    auto wrapIdx = [](int v, int n) { return ((v % n) + n) % n; };

    for (int ix = 0; ix < nc[0]; ++ix) {
        for (int iy = 0; iy < nc[1]; ++iy) {
            for (int iz = 0; iz < nc[2]; ++iz) {
                const int home = (ix * nc[1] + iy) * nc[2] + iz;
                const auto& homeList = cells[std::size_t(home)];
                // Half-shell: visit each neighbour cell pair once.
                for (int dx = -1; dx <= 1; ++dx) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dz = -1; dz <= 1; ++dz) {
                            const int code = (dx + 1) * 9 + (dy + 1) * 3 + (dz + 1);
                            if (code < 13) continue; // skip mirrored half
                            const int other =
                                (wrapIdx(ix + dx, nc[0]) * nc[1] +
                                 wrapIdx(iy + dy, nc[1])) * nc[2] +
                                wrapIdx(iz + dz, nc[2]);
                            const auto& otherList = cells[std::size_t(other)];
                            if (code == 13) {
                                // Same cell: i<j pairs.
                                for (std::size_t a = 0; a < homeList.size(); ++a) {
                                    for (std::size_t b = a + 1; b < homeList.size(); ++b) {
                                        const int i = homeList[a], j = homeList[b];
                                        if (top.isExcluded(i, j)) continue;
                                        const Vec3 d = box.minimumImage(
                                            positions[std::size_t(i)],
                                            positions[std::size_t(j)]);
                                        if (norm2(d) <= cut2)
                                            pairs_.push_back({std::min(i, j), std::max(i, j)});
                                    }
                                }
                            } else if (other != home) {
                                for (int i : homeList) {
                                    for (int j : otherList) {
                                        if (top.isExcluded(i, j)) continue;
                                        const Vec3 d = box.minimumImage(
                                            positions[std::size_t(i)],
                                            positions[std::size_t(j)]);
                                        if (norm2(d) <= cut2)
                                            pairs_.push_back({std::min(i, j), std::max(i, j)});
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Deterministic order independent of cell traversal (useful for tests
    // and for bitwise-reproducible force summation).
    std::sort(pairs_.begin(), pairs_.end(),
              [](const NeighborPair& a, const NeighborPair& b) {
                  return a.i != b.i ? a.i < b.i : a.j < b.j;
              });
    pairs_.erase(std::unique(pairs_.begin(), pairs_.end(),
                             [](const NeighborPair& a, const NeighborPair& b) {
                                 return a.i == b.i && a.j == b.j;
                             }),
                 pairs_.end());
}

} // namespace cop::md
