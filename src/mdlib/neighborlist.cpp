#include "mdlib/neighborlist.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cop::md {

NeighborList::NeighborList(double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
    COP_REQUIRE(cutoff > 0.0, "cutoff must be positive");
    COP_REQUIRE(skin >= 0.0, "skin must be non-negative");
}

void NeighborList::build(const Topology& top, const Box& box,
                         const std::vector<Vec3>& positions) {
    COP_REQUIRE(top.finalized(), "topology must be finalized");
    COP_REQUIRE(positions.size() == top.numParticles(),
                "positions size mismatch");
    pairs_.clear();

    const double listCut = cutoff_ + skin_;
    // A cell grid only pays off when the box supports >= 3 cells per
    // dimension; otherwise fall back to the O(N^2) build (fine for the
    // 35-bead protein).
    bool useCells = box.periodic;
    if (useCells) {
        for (int d = 0; d < 3; ++d)
            if (box.lengths[d] < 3.0 * listCut) useCells = false;
    }
    if (useCells)
        buildCellList(top, box, positions);
    else
        buildBruteForce(top, box, positions);

    // assign() reuses capacity, so steady-state rebuilds don't allocate
    // for the reference copy.
    referencePositions_.assign(positions.begin(), positions.end());
    ++numBuilds_;
}

bool NeighborList::update(const Topology& top, const Box& box,
                          const std::vector<Vec3>& positions,
                          ThreadPool* pool) {
    if (referencePositions_.size() != positions.size()) {
        build(top, box, positions);
        return true;
    }
    const double limit2 = 0.25 * skin_ * skin_;
    const std::size_t n = positions.size();
    const Vec3* cur = positions.data();
    const Vec3* ref = referencePositions_.data();

    // Displacements are plain coordinate differences, not minimum images:
    // nothing rewraps the caller's coordinates mid-run, so below half a
    // box length the two are identical, and beyond that the plain
    // difference only overestimates — which can only trigger the rebuild
    // sooner. Dropping the per-particle rint imaging leaves a pure
    // max-reduction the auto-vectorizer handles.
    auto chunkMax = [&](std::size_t lo, std::size_t hi) {
        double m = -1.0;
        for (std::size_t i = lo; i < hi; ++i) {
            const double dx = cur[i].x - ref[i].x;
            const double dy = cur[i].y - ref[i].y;
            const double dz = cur[i].z - ref[i].z;
            const double d2 = dx * dx + dy * dy + dz * dz;
            m = m > d2 ? m : d2;
        }
        return m;
    };
    // Scalar argmax over the winning chunk only; the hot index is a
    // heuristic, so a vector-vs-scalar FMA-contraction ulp near a tie is
    // irrelevant.
    auto chunkArgmax = [&](std::size_t lo, std::size_t hi) {
        double m = -1.0;
        std::size_t idx = lo;
        for (std::size_t i = lo; i < hi; ++i) {
            const Vec3 d = cur[i] - ref[i];
            const double d2 = norm2(d);
            if (d2 > m) {
                m = d2;
                idx = i;
            }
        }
        return idx;
    };

    // Fast path: the fastest mover from the previous scan usually keeps
    // moving; if it already exceeds the limit we rebuild without scanning
    // anything else.
    if (hotIndex_ < n) {
        const Vec3 d = cur[hotIndex_] - ref[hotIndex_];
        if (norm2(d) > limit2) {
            build(top, box, positions);
            return true;
        }
    }

    bool exceeded = false;
    if (pool != nullptr && pool->size() > 1 && n >= 4096) {
        // Parallel max-displacement scan; deterministic chunk-order
        // combine keeps the hot index reproducible.
        struct MaxDisp {
            double d2 = -1.0;
            std::size_t lo = 0, hi = 0;
        };
        const MaxDisp m = pool->parallelReduceChunked(
            std::size_t{0}, n, MaxDisp{},
            [&](std::size_t lo, std::size_t hi) {
                return MaxDisp{chunkMax(lo, hi), lo, hi};
            },
            [](MaxDisp a, const MaxDisp& b) { return a.d2 >= b.d2 ? a : b; });
        if (m.hi > m.lo) hotIndex_ = chunkArgmax(m.lo, m.hi);
        exceeded = m.d2 > limit2;
    } else {
        constexpr std::size_t kChunk = 2048;
        double best = -1.0;
        std::size_t bestLo = 0, bestHi = 0;
        for (std::size_t lo = 0; lo < n; lo += kChunk) {
            const std::size_t hi = std::min(n, lo + kChunk);
            const double m = chunkMax(lo, hi);
            if (m > best) {
                best = m;
                bestLo = lo;
                bestHi = hi;
            }
            if (m > limit2) {
                exceeded = true;
                break;
            }
        }
        if (bestHi > bestLo) hotIndex_ = chunkArgmax(bestLo, bestHi);
    }
    if (exceeded) {
        build(top, box, positions);
        return true;
    }
    return false;
}

void NeighborList::buildBruteForce(const Topology& top, const Box& box,
                                   const std::vector<Vec3>& positions) {
    order_.clear(); // no cell order this build; cellOrder() must say so
    const int n = int(positions.size());
    const double cut2 = (cutoff_ + skin_) * (cutoff_ + skin_);
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            if (top.isExcluded(i, j)) continue;
            const Vec3 d =
                box.minimumImage(positions[std::size_t(i)],
                                 positions[std::size_t(j)]);
            if (norm2(d) <= cut2) pairs_.push_back({i, j});
        }
    }
}

void NeighborList::buildCellList(const Topology& top, const Box& box,
                                 const std::vector<Vec3>& positions) {
    const double listCut = cutoff_ + skin_;
    const double cut2 = listCut * listCut;
    const int n = int(positions.size());
    int nc[3];
    double cellLen[3];
    for (int d = 0; d < 3; ++d) {
        nc[d] = std::max(3, int(box.lengths[d] / listCut));
        cellLen[d] = box.lengths[d] / nc[d];
    }
    const int totalCells = nc[0] * nc[1] * nc[2];

    // Counting sort into flat persistent arrays: cellOf_ maps particle to
    // cell, cellStart_ holds the exclusive prefix sum, order_ lists
    // particles grouped by cell. Scattering in ascending particle order
    // makes the sort stable, so the emitted pair order is fully
    // deterministic (cell-major, then ascending indices) with no post-sort.
    cellOf_.resize(std::size_t(n));
    cellStart_.assign(std::size_t(totalCells) + 1, 0);
    order_.resize(std::size_t(n));
    cursor_.resize(std::size_t(totalCells));

    for (int i = 0; i < n; ++i) {
        const Vec3 w = box.wrap(positions[std::size_t(i)]);
        const int ix = std::min(nc[0] - 1, int(w.x / cellLen[0]));
        const int iy = std::min(nc[1] - 1, int(w.y / cellLen[1]));
        const int iz = std::min(nc[2] - 1, int(w.z / cellLen[2]));
        const int cell = (ix * nc[1] + iy) * nc[2] + iz;
        cellOf_[std::size_t(i)] = cell;
        ++cellStart_[std::size_t(cell) + 1];
    }
    for (int c = 0; c < totalCells; ++c)
        cellStart_[std::size_t(c) + 1] += cellStart_[std::size_t(c)];
    std::copy(cellStart_.begin(), cellStart_.end() - 1, cursor_.begin());
    for (int i = 0; i < n; ++i)
        order_[std::size_t(cursor_[std::size_t(cellOf_[std::size_t(i)])]++)] =
            i;

    auto wrapIdx = [](int v, int m) { return ((v % m) + m) % m; };

    // Half-shell traversal: with >= 3 cells per dimension every one of the
    // 13 forward offsets lands on a distinct neighbour cell, so each cell
    // pair is visited exactly once and no dedup pass is needed.
    for (int ix = 0; ix < nc[0]; ++ix) {
        for (int iy = 0; iy < nc[1]; ++iy) {
            for (int iz = 0; iz < nc[2]; ++iz) {
                const int home = (ix * nc[1] + iy) * nc[2] + iz;
                const int* homeBegin =
                    order_.data() + cellStart_[std::size_t(home)];
                const int* homeEnd =
                    order_.data() + cellStart_[std::size_t(home) + 1];
                for (int dx = -1; dx <= 1; ++dx) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dz = -1; dz <= 1; ++dz) {
                            const int code =
                                (dx + 1) * 9 + (dy + 1) * 3 + (dz + 1);
                            if (code < 13) continue; // skip mirrored half
                            if (code == 13) {
                                // Same cell: a < b pairs in sorted order.
                                for (const int* a = homeBegin; a != homeEnd;
                                     ++a) {
                                    for (const int* b = a + 1; b != homeEnd;
                                         ++b) {
                                        if (top.isExcluded(*a, *b)) continue;
                                        const Vec3 d = box.minimumImage(
                                            positions[std::size_t(*a)],
                                            positions[std::size_t(*b)]);
                                        if (norm2(d) <= cut2)
                                            pairs_.push_back(
                                                {std::min(*a, *b),
                                                 std::max(*a, *b)});
                                    }
                                }
                                continue;
                            }
                            const int other =
                                (wrapIdx(ix + dx, nc[0]) * nc[1] +
                                 wrapIdx(iy + dy, nc[1])) * nc[2] +
                                wrapIdx(iz + dz, nc[2]);
                            const int* otherBegin =
                                order_.data() + cellStart_[std::size_t(other)];
                            const int* otherEnd =
                                order_.data() +
                                cellStart_[std::size_t(other) + 1];
                            for (const int* a = homeBegin; a != homeEnd;
                                 ++a) {
                                for (const int* b = otherBegin;
                                     b != otherEnd; ++b) {
                                    if (top.isExcluded(*a, *b)) continue;
                                    const Vec3 d = box.minimumImage(
                                        positions[std::size_t(*a)],
                                        positions[std::size_t(*b)]);
                                    if (norm2(d) <= cut2)
                                        pairs_.push_back(
                                            {std::min(*a, *b),
                                             std::max(*a, *b)});
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

} // namespace cop::md
