#include "perfmodel/mdperf.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cop::perf {

double MdPerfModel::efficiency(int cores) const {
    COP_REQUIRE(cores >= 1, "need at least one core");
    return 1.0 / (1.0 + std::pow(double(cores) / effHalfCores, effExp));
}

double MdPerfModel::rateNsPerDay(int cores) const {
    return rate1NsPerDay * double(cores) * efficiency(cores);
}

double MdPerfModel::commandSeconds(double ns, int cores) const {
    COP_REQUIRE(ns > 0.0, "need positive simulated time");
    return ns / rateNsPerDay(cores) * 86400.0;
}

double MdPerfModel::intraSimBandwidth(int cores) const {
    if (cores < 2) return 0.0;
    return intraBwRef * std::pow(double(cores) / 24.0, intraBwExp);
}

} // namespace cop::perf
