#pragma once

/// \file mdperf.hpp
/// Strong-scaling performance model of the underlying MD engine for the
/// villin system (9,864 atoms), calibrated to the numbers quoted in the
/// paper:
///   - single-simulation performance "around 200 ns/day with 100 cores ...
///     roughly the limit of strong scaling" (§4),
///   - 53% total scaling efficiency at 20,000 cores with 96-core commands,
///     which pins the intra-simulation efficiency at 96 cores to ~0.53,
///   - t_res(1) = 1.1e5 hours for the whole MSM command set (Fig. 7
///     caption), which pins the single-core rate given the command count,
///   - intra-simulation communication of 500-2900 MB/s for 24-96 cores
///     (§4),
///   - command output of ~2 MB so the ensemble-level bandwidth falls in
///     the paper's 0.001-0.1 MB/s range (Fig. 9).

#include <cstddef>
#include <cstdint>

namespace cop::perf {

struct MdPerfModel {
    /// Single-core simulation rate in villin-nanoseconds per day.
    /// Derived from t_res(1) = 1.1e5 h over 1800 50-ns commands.
    double rate1NsPerDay = 19.6;
    /// Parallel efficiency: eff(m) = 1 / (1 + (m / effHalfCores)^effExp).
    /// Calibrated so eff(96) ~ 0.53 and eff(100 cores) ~ 0.5 (200 ns/day).
    double effHalfCores = 105.0;
    double effExp = 1.3;
    /// Intra-simulation (MPI-level) bandwidth model (bytes/s):
    /// bw(m) = intraBwRef * (m / 24)^intraBwExp; paper: 500 MB/s at 24
    /// cores to 2900 MB/s at 96 cores.
    double intraBwRef = 500e6;
    double intraBwExp = 1.27;
    /// Serialized output per finished command (compressed trajectory).
    std::size_t outputBytesPerCommand = 2'000'000;

    /// Parallel efficiency of one simulation on m cores, in (0, 1].
    double efficiency(int cores) const;

    /// Simulation rate on m cores, ns/day.
    double rateNsPerDay(int cores) const;

    /// Wall seconds to simulate `ns` nanoseconds on `cores` cores.
    double commandSeconds(double ns, int cores) const;

    /// Intra-simulation (message-passing) bandwidth in bytes/s for a
    /// command on `cores` cores; 0 for serial runs.
    double intraSimBandwidth(int cores) const;
};

} // namespace cop::perf
