#include "perfmodel/scaling.hpp"

#include <algorithm>
#include <memory>

#include "core/backends.hpp"
#include "core/copernicus.hpp"
#include "util/error.hpp"

namespace cop::perf {

namespace {

/// Controller that reproduces the MSM controller's command pattern
/// without the MD: `commandsPerGeneration` trajectory chains, each
/// extended segment-by-segment for `generations` rounds, exactly like the
/// real controller extends trajectories as their segments return (no
/// global barrier - workers never idle while any chain has work).
class SyntheticMsmController : public core::Controller {
public:
    explicit SyntheticMsmController(const ScalingConfig& config)
        : config_(config) {}

    void onProjectStart(core::ProjectContext& ctx) override {
        segmentsDone_.assign(std::size_t(config_.commandsPerGeneration), 0);
        for (int c = 0; c < config_.commandsPerGeneration; ++c)
            submitSegment(ctx, c, 0);
    }

    void onCommandFinished(core::ProjectContext& ctx,
                           const core::CommandResult& r) override {
        ++totalFinished_;
        // A "generation" completes when C more segments have landed; the
        // clustering step is charged to the generation-end timestamp.
        if (totalFinished_ % config_.commandsPerGeneration == 0)
            generationEnds_.push_back(ctx.now() + config_.clusteringSeconds);
        auto& done = segmentsDone_[std::size_t(r.trajectoryId)];
        ++done;
        if (done < config_.generations)
            submitSegment(ctx, r.trajectoryId, done);
        if (totalFinished_ ==
            config_.generations * config_.commandsPerGeneration)
            done_ = true;
    }

    bool isDone(const core::ProjectContext&) const override { return done_; }

    const std::vector<double>& generationEnds() const {
        return generationEnds_;
    }

private:
    void submitSegment(core::ProjectContext& ctx, int chain, int segment) {
        core::CommandSpec spec;
        spec.executable = "mdrun_sim";
        spec.steps = std::int64_t(config_.segmentNs);
        spec.preferredCores = config_.coresPerSim;
        spec.trajectoryId = chain;
        spec.generation = segment;
        ctx.submitCommand(std::move(spec));
    }

    ScalingConfig config_;
    std::vector<int> segmentsDone_;
    int totalFinished_ = 0;
    bool done_ = false;
    std::vector<double> generationEnds_;
};

} // namespace

double serialTimeHours(const ScalingConfig& config) {
    return config.generations * config.commandsPerGeneration *
           config.perf.commandSeconds(config.segmentNs, 1) / 3600.0;
}

ScalingResult simulateRun(const ScalingConfig& config) {
    COP_REQUIRE(config.totalCores >= config.coresPerSim,
                "fewer cores than one simulation needs");
    COP_REQUIRE(config.stopGeneration >= 1 &&
                    config.stopGeneration <= config.generations,
                "bad stop generation");

    core::Deployment dep(config.totalCores * 31 + config.coresPerSim);
    core::ServerConfig sc;
    sc.heartbeatInterval = 6.0 * 3600.0; // suppress heartbeat traffic noise
    sc.batch.enabled = config.batching;
    auto& server = dep.addServer("project-server", sc);

    const int workers = config.totalCores / config.coresPerSim;
    const MdPerfModel perf = config.perf;
    const double segmentNs = config.segmentNs;
    for (int w = 0; w < workers; ++w) {
        core::ExecutableRegistry reg;
        reg.add("mdrun_sim",
                core::makeSimulatedExecutable(
                    [perf, segmentNs](std::int64_t steps, int cores) {
                        (void)steps;
                        return perf.commandSeconds(segmentNs, cores);
                    },
                    perf.outputBytesPerCommand));
        core::WorkerConfig wc;
        wc.cores = config.coresPerSim;
        wc.heartbeatInterval = 6.0 * 3600.0;
        // Fixed 600 s poll (no growth, no jitter) keeps the traffic model
        // of the original study.
        wc.pollBackoff = net::BackoffPolicy{600.0, 1.0, 600.0, 0.0};
        wc.batch.enabled = config.batching;
        dep.addWorker("w" + std::to_string(w), server, wc, std::move(reg),
                      core::links::intraCluster());
    }

    auto controller = std::make_unique<SyntheticMsmController>(config);
    auto* driver = controller.get();
    server.createProject("villin-scaling", std::move(controller));

    const bool done = dep.runUntilDone(1e12);
    COP_ENSURE(done, "scaling run did not finish");

    const auto& ends = driver->generationEnds();
    COP_ENSURE(int(ends.size()) == config.generations,
               "missing generation records");

    ScalingResult res;
    res.totalCores = config.totalCores;
    res.coresPerSim = config.coresPerSim;
    res.workers = workers;
    res.timeToSolutionHours =
        ends[std::size_t(config.stopGeneration - 1)] / 3600.0;
    res.totalTimeHours = ends.back() / 3600.0;
    res.efficiency = serialTimeHours(config) /
                     (double(config.totalCores) * res.totalTimeHours);
    const auto stats = dep.network().totalStats();
    res.totalBytes = double(stats.bytes);
    res.bytesPerGeneration = res.totalBytes / config.generations;
    res.totalFrames = double(stats.messages);
    res.ensembleBandwidth = res.totalTimeHours > 0.0
                                ? res.totalBytes /
                                      (res.totalTimeHours * 3600.0)
                                : 0.0;
    // Busy core-seconds / available core-seconds.
    double busy = 0.0;
    for (const auto& w : dep.workers())
        busy += w->stats().busySeconds * config.coresPerSim *
                perf.efficiency(config.coresPerSim);
    res.utilization = busy / (double(config.totalCores) *
                              res.totalTimeHours * 3600.0);
    return res;
}

std::vector<ScalingResult> sweepTotalCores(
    const ScalingConfig& base, const std::vector<int>& totalCores) {
    std::vector<ScalingResult> out;
    out.reserve(totalCores.size());
    for (int n : totalCores) {
        if (n < base.coresPerSim) continue;
        ScalingConfig cfg = base;
        cfg.totalCores = n;
        out.push_back(simulateRun(cfg));
    }
    return out;
}

} // namespace cop::perf
