#pragma once

/// \file scaling.hpp
/// The scaling study of the paper's Figs. 7-9: simulate the controller's
/// activity for a full villin MSM project at a given total core count and
/// cores-per-simulation, using the real Copernicus scheduling stack
/// (Server, CommandQueue, Worker) on the discrete-event loop, with command
/// durations from the calibrated MdPerfModel. The paper did exactly this:
/// "we additionally benchmarked simulations with different numbers of
/// cores and then simulated the controller's activity given different
/// numbers of cores per task and total resources allocated."

#include <vector>

#include "perfmodel/mdperf.hpp"

namespace cop::perf {

struct ScalingConfig {
    int totalCores = 5000;
    int coresPerSim = 24;
    /// Commands per MSM generation (paper: 225 for villin).
    int commandsPerGeneration = 225;
    /// Generations to run (paper: ~8 for the blind prediction).
    int generations = 8;
    /// Generation at which the stop criterion of Fig. 8 fires ("time to
    /// observation of the first folded conformation", ~3 generations).
    int stopGeneration = 3;
    /// Nanoseconds simulated per command (paper: 50 ns).
    double segmentNs = 50.0;
    /// Seconds of controller work (clustering) between generations.
    double clusteringSeconds = 60.0;
    /// Envelope coalescing on the server/worker endpoints. Toggled off to
    /// measure the unbatched wire cost (Fig. 9 batched-vs-unbatched
    /// comparison); the protocol outcome is identical either way.
    bool batching = true;
    MdPerfModel perf;
};

struct ScalingResult {
    int totalCores = 0;
    int coresPerSim = 0;
    int workers = 0;
    /// Wall-clock (virtual) hours until the stop criterion.
    double timeToSolutionHours = 0.0;
    /// Wall-clock hours for the complete project.
    double totalTimeHours = 0.0;
    /// t_res(1) / (N * t_res(N)), with t_res(1) from the same model.
    double efficiency = 0.0;
    /// Average ensemble-level bandwidth (bytes/s) over the whole run.
    double ensembleBandwidth = 0.0;
    /// Total ensemble bytes moved.
    double totalBytes = 0.0;
    /// Bytes on the wire per MSM generation (totalBytes / generations).
    double bytesPerGeneration = 0.0;
    /// Wire frames put on the overlay (batches count once).
    double totalFrames = 0.0;
    /// Average fraction of cores busy.
    double utilization = 0.0;
};

/// Reference serial time for the whole project, hours.
double serialTimeHours(const ScalingConfig& config);

/// Runs the DES and reports the scaling metrics.
ScalingResult simulateRun(const ScalingConfig& config);

/// Sweeps total core counts for one cores-per-sim setting (one line of
/// Figs. 7/8/9).
std::vector<ScalingResult> sweepTotalCores(
    const ScalingConfig& base, const std::vector<int>& totalCores);

} // namespace cop::perf
