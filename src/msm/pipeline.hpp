#pragma once

/// \file pipeline.hpp
/// End-to-end MSM construction from raw trajectories, as performed by the
/// paper's MSM controller at each clustering step: subsample snapshots
/// (paper: every 1.5 ns), cluster (k-centers [+ k-medoids refinement]),
/// assign, count transitions, estimate the transition matrix on the largest
/// connected subset.

#include <vector>

#include "mdlib/trajectory.hpp"
#include "msm/clustering.hpp"
#include "msm/markov_model.hpp"

namespace cop::msm {

struct MsmPipelineParams {
    std::size_t numClusters = 200;
    /// Frames of the input trajectories between clustering snapshots
    /// (paper: snapshots every 1.5 ns).
    std::size_t snapshotStride = 3;
    /// MSM lag time in snapshot intervals.
    std::size_t lag = 1;
    EstimatorKind estimator = EstimatorKind::ReversibleMle;
    double pseudocount = 0.0;
    int medoidSweeps = 1;
    std::uint64_t seed = 0;
};

struct MsmPipelineResult {
    ClusteringResult clustering;
    /// One discrete trajectory per input trajectory, over microstates.
    std::vector<DiscreteTrajectory> discrete;
    /// Count matrix over all microstates (before SCC restriction).
    DenseMatrix counts;
    MarkovStateModel model;
    /// Representative conformation of each microstate.
    std::vector<std::vector<Vec3>> centers;
    /// Total snapshots per microstate.
    std::vector<std::size_t> populations;

    /// Microstates with at least one snapshot (all of them, by
    /// construction) — convenience for adaptive planning.
    std::vector<bool> observedStates() const;
};

/// Runs the full pipeline. Requires at least lag+1 snapshots in some
/// trajectory and at least one non-empty trajectory.
MsmPipelineResult buildMsm(const std::vector<md::Trajectory>& trajectories,
                           const MsmPipelineParams& params);

/// Implied-timescale sensitivity analysis (paper §3.2: "the system became
/// Markovian for lag times of 20 ns or greater"): slowest `nTimescales`
/// implied timescales for each lag in `lags` (snapshot-interval units).
std::vector<std::vector<double>> impliedTimescaleSweep(
    const std::vector<DiscreteTrajectory>& discrete, std::size_t numStates,
    const std::vector<std::size_t>& lags, std::size_t nTimescales,
    EstimatorKind estimator = EstimatorKind::ReversibleMle);

} // namespace cop::msm
