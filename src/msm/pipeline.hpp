#pragma once

/// \file pipeline.hpp
/// End-to-end MSM construction from raw trajectories, as performed by the
/// paper's MSM controller at each clustering step: subsample snapshots
/// (paper: every 1.5 ns), cluster (k-centers [+ k-medoids refinement]),
/// assign, count transitions, estimate the transition matrix on the largest
/// connected subset.
///
/// Two entry points build the same result:
///  - buildMsm: the from-scratch pipeline over a full trajectory set;
///  - IncrementalMsmBuilder: persists clustering state across adaptive
///    generations, assigning only newly appended snapshots to the frozen
///    centers and counting only the new transition windows, with a fallback
///    to a full re-cluster when coverage degrades. The adaptive-sampling
///    loop re-runs the MSM every generation over an ever-growing dataset;
///    incrementality makes that rebuild cost proportional to the *new*
///    data instead of the total.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mdlib/trajectory.hpp"
#include "msm/clustering.hpp"
#include "msm/markov_model.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::msm {

struct MsmPipelineParams {
    std::size_t numClusters = 200;
    /// Frames of the input trajectories between clustering snapshots
    /// (paper: snapshots every 1.5 ns).
    std::size_t snapshotStride = 3;
    /// MSM lag time in snapshot intervals.
    std::size_t lag = 1;
    EstimatorKind estimator = EstimatorKind::ReversibleMle;
    double pseudocount = 0.0;
    int medoidSweeps = 1;
    std::uint64_t seed = 0;
    /// Triangle-inequality pruning of RMSD evaluations (never changes any
    /// result; off exists for tests and benchmarks).
    bool prune = true;
};

/// Per-build accounting: how much work one MSM construction (or one
/// incremental generation) actually performed. Logged by the MSM controller
/// each generation.
struct MsmStats {
    std::size_t generation = 0; ///< 1-based update index (0 for buildMsm)
    bool fullRebuild = false;   ///< re-clustered from scratch this build
    std::size_t snapshotsTotal = 0;
    std::size_t snapshotsNew = 0; ///< snapshots first seen this build
    /// RMSD evaluations performed vs pruned during this build.
    RmsdCounters rmsd;
    /// Current max point-to-center distance, and its value at the last
    /// full re-cluster (the degradation baseline).
    double clusterRadius = 0.0;
    double radiusAtFull = 0.0;
    double clusterSeconds = 0.0;  ///< k-centers (+ medoid refinement)
    double assignSeconds = 0.0;   ///< frozen-center assignment (incremental)
    double countSeconds = 0.0;    ///< transition counting
    double estimateSeconds = 0.0; ///< SCC restriction + estimator

    double totalSeconds() const {
        return clusterSeconds + assignSeconds + countSeconds +
               estimateSeconds;
    }
    /// One-line human-readable summary for the controller log.
    std::string summary() const;
};

struct MsmPipelineResult {
    ClusteringResult clustering;
    /// One discrete trajectory per input trajectory, over microstates.
    std::vector<DiscreteTrajectory> discrete;
    /// Count matrix over all microstates (before SCC restriction). Kept
    /// dense for downstream consumers; derived from `sparseCounts`.
    DenseMatrix counts;
    /// The same counts in sparse form (the representation the pipeline
    /// actually maintains).
    SparseCounts sparseCounts;
    MarkovStateModel model;
    /// Representative conformation of each microstate.
    std::vector<std::vector<Vec3>> centers;
    /// Total snapshots per microstate.
    std::vector<std::size_t> populations;
    /// Work accounting for the build that produced this result.
    MsmStats stats;

    /// Microstates with at least one snapshot (all of them, by
    /// construction) — convenience for adaptive planning.
    std::vector<bool> observedStates() const;
};

/// Non-owning trajectory list: the pipeline only reads frames, so callers
/// (the MSM controller in particular) pass pointers instead of deep-copying
/// every trajectory each generation.
using TrajectoryRefs = std::vector<const md::Trajectory*>;

/// Runs the full pipeline. Requires at least lag+1 snapshots in some
/// trajectory and at least one non-empty trajectory. With a pool, the
/// RMSD sweeps and transition counting are chunked across threads; the
/// result is identical to the serial run.
MsmPipelineResult buildMsm(const TrajectoryRefs& trajectories,
                           const MsmPipelineParams& params,
                           ThreadPool* pool = nullptr);

/// Convenience overload for owned trajectory vectors.
MsmPipelineResult buildMsm(const std::vector<md::Trajectory>& trajectories,
                           const MsmPipelineParams& params,
                           ThreadPool* pool = nullptr);

/// Incremental MSM construction across adaptive-sampling generations.
///
/// Each update() appends the new frames of its input trajectories (keyed by
/// a stable id; a trajectory may only grow between updates), assigns only
/// the new snapshots to the frozen cluster centers (triangle-inequality
/// pruned, threaded), and extends the sparse count matrix with only the
/// transition windows that end in the new suffixes. A full re-cluster runs
/// when:
///  - this is the first update,
///  - the target cluster count changed,
///  - rebuildRadiusFactor <= 0 (always-full mode), or
///  - the max point-to-center radius exceeds rebuildRadiusFactor times its
///    value at the last full build (the frozen centers no longer cover the
///    sampled region).
///
/// On a full rebuild the snapshot store is reordered trajectory-major
/// first, so the rebuild is bit-identical to buildMsm over the same
/// trajectories with the same parameters.
struct IncrementalMsmParams {
    MsmPipelineParams pipeline;
    /// Radius-degradation threshold for falling back to a full re-cluster.
    /// <= 0 forces a full rebuild every update.
    double rebuildRadiusFactor = 1.5;
};

class IncrementalMsmBuilder {
public:
    explicit IncrementalMsmBuilder(IncrementalMsmParams params)
        : params_(std::move(params)) {}

    /// Ingests trajectory growth and returns the updated pipeline result.
    MsmPipelineResult update(
        const std::vector<std::pair<int, const md::Trajectory*>>& trajectories,
        ThreadPool* pool = nullptr);

    std::size_t generation() const { return generation_; }
    const IncrementalMsmParams& params() const { return params_; }
    /// Per-generation work accounting, oldest first.
    const std::vector<MsmStats>& history() const { return history_; }

    /// Changes the target microstate count; the next update() re-clusters.
    void setNumClusters(std::size_t k) { params_.pipeline.numClusters = k; }

    /// Seed used by the next full re-cluster (first-center choice and
    /// medoid sampling). The controller redraws it every generation so the
    /// draw order matches the historical from-scratch pipeline.
    void setSeed(std::uint64_t seed) { params_.pipeline.seed = seed; }

private:
    struct TrajState {
        std::size_t nextSnapshotFrame = 0; ///< next frame index to sample
        std::vector<std::size_t> snapIdx;  ///< flat indices, temporal order
        DiscreteTrajectory discrete;
        std::size_t countedLength = 0; ///< discrete length already counted
    };

    void reorderTrajectoryMajor();
    void fullRebuild(MsmStats& stats, ThreadPool* pool);
    MsmPipelineResult assembleResult(MsmStats stats);

    IncrementalMsmParams params_;
    std::size_t generation_ = 0;

    ConformationSet snapshots_; ///< flat, arrival order between rebuilds
    std::vector<TrajState> states_;         // in first-seen order
    std::unordered_map<int, std::size_t> idToState_;

    std::vector<int> assignments_;   ///< flat, aligned with snapshots_
    std::vector<double> distances_;  ///< flat, aligned with snapshots_
    std::vector<std::size_t> centers_;
    std::vector<double> centerDist_; ///< lazy k*k prune table
    SparseCounts counts_;
    double radiusAtFull_ = 0.0;
    double maxRadius_ = 0.0;
    std::size_t kAtFull_ = 0;
    RmsdCounters cumulativeRmsd_;
    std::vector<MsmStats> history_;
};

/// Implied-timescale sensitivity analysis (paper §3.2: "the system became
/// Markovian for lag times of 20 ns or greater"): slowest `nTimescales`
/// implied timescales for each lag in `lags` (snapshot-interval units).
/// All lags are counted in a single pass over the trajectories.
std::vector<std::vector<double>> impliedTimescaleSweep(
    const std::vector<DiscreteTrajectory>& discrete, std::size_t numStates,
    const std::vector<std::size_t>& lags, std::size_t nTimescales,
    EstimatorKind estimator = EstimatorKind::ReversibleMle);

} // namespace cop::msm
