#include "msm/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cop::msm {

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
    COP_REQUIRE(x.size() == cols_, "dimension mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * x[j];
        y[i] = s;
    }
    return y;
}

std::vector<double> DenseMatrix::leftMultiply(
    const std::vector<double>& x) const {
    COP_REQUIRE(x.size() == rows_, "dimension mismatch");
    std::vector<double> y(cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        for (std::size_t j = 0; j < cols_; ++j)
            y[j] += xi * (*this)(i, j);
    }
    return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
    COP_REQUIRE(cols_ == other.rows_, "dimension mismatch");
    DenseMatrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                out(i, j) += aik * other(k, j);
        }
    return out;
}

DenseMatrix DenseMatrix::transposed() const {
    DenseMatrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
}

double DenseMatrix::maxAbsDiff(const DenseMatrix& other) const {
    COP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "dimension mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - other.data_[i]));
    return m;
}

std::vector<double> solveLinearSystem(DenseMatrix a, std::vector<double> b) {
    const std::size_t n = a.rows();
    COP_REQUIRE(a.cols() == n && b.size() == n, "dimension mismatch");
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
        if (std::abs(a(pivot, col)) < 1e-14)
            throw NumericalError("singular linear system");
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j)
                std::swap(a(col, j), a(pivot, j));
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a(r, col) / a(col, col);
            if (f == 0.0) continue;
            for (std::size_t j = col; j < n; ++j) a(r, j) -= f * a(col, j);
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
        x[i] = s / a(i, i);
    }
    return x;
}

SymmetricEigen symmetricEigen(DenseMatrix a, int maxSweeps) {
    const std::size_t n = a.rows();
    COP_REQUIRE(a.cols() == n, "matrix must be square");
    DenseMatrix v = DenseMatrix::identity(n);

    for (int sweep = 0; sweep < maxSweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
        if (off < 1e-22) break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                if (std::abs(a(p, q)) < 1e-16) continue;
                const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) +
                                  std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p), akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k), aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return a(x, x) > a(y, y);
    });
    SymmetricEigen out;
    out.values.resize(n);
    out.vectors = DenseMatrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = a(order[k], order[k]);
        for (std::size_t i = 0; i < n; ++i)
            out.vectors(i, k) = v(i, order[k]);
    }
    return out;
}

} // namespace cop::msm
