#pragma once

/// \file adaptive.hpp
/// Adaptive-sampling seed selection (paper §3.2): given the current state
/// partitioning and transition counts, decide how many new trajectories to
/// spawn from each microstate. Two weighting schemes, matching the paper's
/// user-settable MSM controller parameter:
///
///  - Even weighting: a uniform number of trajectories per discovered
///    state; preferred early, while the state partitioning is unstable.
///  - Adaptive weighting: trajectories weighted by the statistical
///    uncertainty in the transitions out of each state (classic
///    count-based criterion of Bowman et al. 2009, where the variance of a
///    multinomial row estimate scales as 1/(n_i + 1)); preferred once the
///    partitioning has stabilized, and claimed by the paper to boost
///    sampling efficiency up to twofold.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "msm/linalg.hpp"

namespace cop::msm {

enum class WeightingScheme { Even, Adaptive };

struct AdaptivePlan {
    /// Number of new trajectories to start from each microstate.
    std::vector<int> seedsPerState;

    int totalSeeds() const;
};

struct AdaptiveParams {
    WeightingScheme scheme = WeightingScheme::Adaptive;
    /// Total number of trajectories to spawn this round.
    int totalSeeds = 0;
    /// Only states with at least one observed snapshot are eligible.
    /// Deterministic tie-breaking uses this seed.
    std::uint64_t seed = 0;
};

/// Computes per-state seed counts. `counts` is the (unrestricted) microstate
/// count matrix; `observed` flags states with at least one assigned
/// snapshot. Guarantees sum(seedsPerState) == totalSeeds when any state is
/// observed.
AdaptivePlan planAdaptiveSampling(const DenseMatrix& counts,
                                  const std::vector<bool>& observed,
                                  const AdaptiveParams& params);

/// The per-state weights used by the Adaptive scheme (exposed for tests and
/// the ablation bench): w_i proportional to 1 / (totalOutCounts_i + 1).
std::vector<double> adaptiveWeights(const DenseMatrix& counts,
                                    const std::vector<bool>& observed);

} // namespace cop::msm
