#include "msm/markov_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cop::msm {

MarkovStateModel MarkovStateModel::fromCounts(const DenseMatrix& counts,
                                              const MarkovModelParams& params) {
    COP_REQUIRE(counts.rows() == counts.cols(), "counts must be square");
    auto active = largestConnectedSet(counts);
    COP_REQUIRE(!active.empty(), "no connected states");
    auto restricted = restrictToStates(counts, active);
    return fromActiveCounts(std::move(active), std::move(restricted),
                            counts.rows(), params);
}

MarkovStateModel MarkovStateModel::fromCounts(const SparseCounts& counts,
                                              const MarkovModelParams& params) {
    auto active = largestConnectedSet(counts);
    COP_REQUIRE(!active.empty(), "no connected states");
    auto restricted = restrictToStates(counts, active);
    return fromActiveCounts(std::move(active), std::move(restricted),
                            counts.numStates(), params);
}

MarkovStateModel MarkovStateModel::fromActiveCounts(
    std::vector<int> activeStates, DenseMatrix activeCounts,
    std::size_t numMicrostates, const MarkovModelParams& params) {
    COP_REQUIRE(params.lag >= 1, "lag must be >= 1");

    MarkovStateModel model;
    model.params_ = params;
    model.activeStates_ = std::move(activeStates);
    model.activeCounts_ = std::move(activeCounts);

    model.toActive_.assign(numMicrostates, -1);
    for (std::size_t a = 0; a < model.activeStates_.size(); ++a)
        model.toActive_[std::size_t(model.activeStates_[a])] = int(a);

    const std::size_t n = model.activeStates_.size();
    DenseMatrix c = model.activeCounts_;
    if (params.pseudocount > 0.0) {
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                if (c(i, j) > 0.0) c(i, j) += params.pseudocount;
    }
    if (params.estimator == EstimatorKind::ReversibleMle) {
        model.transition_ = estimateReversibleMle(c, params.mleIterations,
                                                  params.mleTolerance);
        return model;
    }
    if (params.estimator == EstimatorKind::Symmetrized) {
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                const double s = 0.5 * (c(i, j) + c(j, i));
                c(i, j) = c(j, i) = s;
            }
    }
    model.transition_ = DenseMatrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double rowSum = 0.0;
        for (std::size_t j = 0; j < n; ++j) rowSum += c(i, j);
        if (rowSum <= 0.0) {
            model.transition_(i, i) = 1.0; // isolated single-state SCC
            continue;
        }
        for (std::size_t j = 0; j < n; ++j)
            model.transition_(i, j) = c(i, j) / rowSum;
    }
    return model;
}

DenseMatrix estimateReversibleMle(const DenseMatrix& counts,
                                  int maxIterations, double tolerance) {
    // Standard fixed-point iteration for the reversible transition-matrix
    // MLE (Bowman et al. 2009 / the MSMBuilder "MLE" estimator): iterate
    //   x_ij <- (c_ij + c_ji) / (c_i / x_i + c_j / x_j)
    // on the symmetric flow matrix x, where c_i and x_i are row sums;
    // then T_ij = x_ij / x_i. The stationary distribution is x_i / sum(x),
    // decoupled from the per-state sampling volume.
    const std::size_t n = counts.rows();
    COP_REQUIRE(counts.cols() == n, "counts must be square");

    std::vector<double> cRow(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) cRow[i] += counts(i, j);

    DenseMatrix x(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            x(i, j) = counts(i, j) + counts(j, i);

    std::vector<double> xRow(n, 0.0);
    for (int iter = 0; iter < maxIterations; ++iter) {
        std::fill(xRow.begin(), xRow.end(), 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) xRow[i] += x(i, j);
        double delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i; j < n; ++j) {
                const double cSym = counts(i, j) + counts(j, i);
                if (cSym <= 0.0) continue;
                const double denom =
                    (xRow[i] > 0.0 ? cRow[i] / xRow[i] : 0.0) +
                    (xRow[j] > 0.0 ? cRow[j] / xRow[j] : 0.0);
                if (denom <= 0.0) continue;
                const double updated = cSym / denom;
                delta = std::max(delta, std::abs(updated - x(i, j)));
                x(i, j) = x(j, i) = updated;
            }
        }
        if (delta < tolerance) break;
    }

    std::fill(xRow.begin(), xRow.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) xRow[i] += x(i, j);

    DenseMatrix t(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        if (xRow[i] <= 0.0) {
            t(i, i) = 1.0;
            continue;
        }
        for (std::size_t j = 0; j < n; ++j) t(i, j) = x(i, j) / xRow[i];
    }
    return t;
}

MarkovStateModel MarkovStateModel::fromTrajectories(
    const std::vector<DiscreteTrajectory>& trajs, std::size_t numStates,
    const MarkovModelParams& params) {
    return fromCounts(countTransitions(trajs, numStates, params.lag), params);
}

int MarkovStateModel::toActiveIndex(int microstate) const {
    COP_REQUIRE(microstate >= 0 &&
                    std::size_t(microstate) < toActive_.size(),
                "microstate out of range");
    return toActive_[std::size_t(microstate)];
}

const std::vector<double>& MarkovStateModel::stationaryDistribution() const {
    if (stationary_) return *stationary_;
    const std::size_t n = numStates();
    std::vector<double> p(n, 1.0 / double(n));
    for (int iter = 0; iter < 100000; ++iter) {
        auto next = transition_.leftMultiply(p);
        double sum = 0.0;
        for (double v : next) sum += v;
        for (double& v : next) v /= sum;
        double delta = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            delta = std::max(delta, std::abs(next[i] - p[i]));
        p = std::move(next);
        if (delta < 1e-14) break;
    }
    stationary_ = std::move(p);
    return *stationary_;
}

std::vector<double> MarkovStateModel::propagate(
    const std::vector<double>& p) const {
    COP_REQUIRE(p.size() == numStates(), "distribution size mismatch");
    return transition_.leftMultiply(p);
}

std::vector<double> MarkovStateModel::propagate(std::vector<double> p,
                                                std::size_t nSteps) const {
    for (std::size_t s = 0; s < nSteps; ++s) p = propagate(p);
    return p;
}

std::vector<double> MarkovStateModel::eigenvalues(std::size_t count) const {
    const std::size_t n = numStates();
    const auto& pi = stationaryDistribution();
    // Similarity transform S = D^{1/2} T D^{-1/2}; symmetric when T obeys
    // detailed balance w.r.t. pi. Symmetrize defensively.
    DenseMatrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double denom = std::sqrt(std::max(pi[j], 1e-300));
            s(i, j) = std::sqrt(std::max(pi[i], 1e-300)) *
                      transition_(i, j) / denom;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double v = 0.5 * (s(i, j) + s(j, i));
            s(i, j) = s(j, i) = v;
        }
    auto eig = symmetricEigen(std::move(s));
    eig.values.resize(std::min(count, eig.values.size()));
    return eig.values;
}

std::vector<double> MarkovStateModel::impliedTimescales(
    std::size_t count) const {
    const auto lambda = eigenvalues(count + 1);
    std::vector<double> ts;
    for (std::size_t k = 1; k < lambda.size(); ++k) {
        const double l = std::clamp(lambda[k], -1.0 + 1e-15, 1.0 - 1e-15);
        if (l <= 0.0) {
            ts.push_back(0.0); // faster than the lag; no meaningful timescale
            continue;
        }
        ts.push_back(-double(params_.lag) / std::log(l));
    }
    return ts;
}

std::vector<double> MarkovStateModel::meanFirstPassageTimes(
    const std::vector<int>& targetActiveStates) const {
    const std::size_t n = numStates();
    COP_REQUIRE(!targetActiveStates.empty(), "empty target set");
    std::vector<bool> isTarget(n, false);
    for (int t : targetActiveStates) {
        COP_REQUIRE(t >= 0 && std::size_t(t) < n, "target out of range");
        isTarget[std::size_t(t)] = true;
    }
    std::vector<std::size_t> q; // non-target states
    for (std::size_t i = 0; i < n; ++i)
        if (!isTarget[i]) q.push_back(i);

    std::vector<double> mfpt(n, 0.0);
    if (q.empty()) return mfpt;

    // (I - T_QQ) m = lag * 1
    DenseMatrix a(q.size(), q.size());
    std::vector<double> b(q.size(), double(params_.lag));
    for (std::size_t r = 0; r < q.size(); ++r)
        for (std::size_t col = 0; col < q.size(); ++col)
            a(r, col) = (r == col ? 1.0 : 0.0) - transition_(q[r], q[col]);
    const auto m = solveLinearSystem(std::move(a), std::move(b));
    for (std::size_t r = 0; r < q.size(); ++r) mfpt[q[r]] = m[r];
    return mfpt;
}

std::vector<double> MarkovStateModel::committor(
    const std::vector<int>& sourceA, const std::vector<int>& sinkB) const {
    const std::size_t n = numStates();
    COP_REQUIRE(!sourceA.empty() && !sinkB.empty(), "empty boundary set");
    std::vector<int> role(n, 0); // 0 = interior, 1 = A, 2 = B
    for (int s : sourceA) role[std::size_t(s)] = 1;
    for (int s : sinkB) {
        COP_REQUIRE(role[std::size_t(s)] != 1, "A and B overlap");
        role[std::size_t(s)] = 2;
    }
    std::vector<std::size_t> interior;
    for (std::size_t i = 0; i < n; ++i)
        if (role[i] == 0) interior.push_back(i);

    std::vector<double> qc(n, 0.0);
    for (int s : sinkB) qc[std::size_t(s)] = 1.0;
    if (interior.empty()) return qc;

    // (I - T_II) q_I = T_IB * 1
    DenseMatrix a(interior.size(), interior.size());
    std::vector<double> b(interior.size(), 0.0);
    for (std::size_t r = 0; r < interior.size(); ++r) {
        for (std::size_t c = 0; c < interior.size(); ++c)
            a(r, c) =
                (r == c ? 1.0 : 0.0) - transition_(interior[r], interior[c]);
        for (std::size_t j = 0; j < n; ++j)
            if (role[j] == 2) b[r] += transition_(interior[r], j);
    }
    const auto sol = solveLinearSystem(std::move(a), std::move(b));
    for (std::size_t r = 0; r < interior.size(); ++r)
        qc[interior[r]] = sol[r];
    return qc;
}

double chapmanKolmogorovError(const std::vector<DiscreteTrajectory>& trajs,
                              std::size_t numStates, std::size_t lag,
                              std::size_t k,
                              const MarkovModelParams& params) {
    COP_REQUIRE(k >= 1, "k must be >= 1");
    MarkovModelParams p1 = params;
    p1.lag = lag;
    MarkovModelParams pk = params;
    pk.lag = lag * k;
    const auto m1 = MarkovStateModel::fromTrajectories(trajs, numStates, p1);
    const auto mk = MarkovStateModel::fromTrajectories(trajs, numStates, pk);

    // T1^k on m1's active set.
    DenseMatrix tk = DenseMatrix::identity(m1.numStates());
    for (std::size_t s = 0; s < k; ++s)
        tk = tk.multiply(m1.transitionMatrix());

    // Compare over microstates active in both models.
    double err = 0.0;
    for (std::size_t a = 0; a < m1.numStates(); ++a) {
        const int ia = m1.activeState(a);
        const int ka = mk.toActiveIndex(ia);
        if (ka < 0) continue;
        for (std::size_t b = 0; b < m1.numStates(); ++b) {
            const int ib = m1.activeState(b);
            const int kb = mk.toActiveIndex(ib);
            if (kb < 0) continue;
            err = std::max(err,
                           std::abs(tk(a, b) -
                                    mk.transitionMatrix()(std::size_t(ka),
                                                          std::size_t(kb))));
        }
    }
    return err;
}

} // namespace cop::msm
