#pragma once

/// \file clustering.hpp
/// Conformational clustering for Markov state models. The paper's MSM
/// plugin performs "kinetic clustering" into microstates using structural
/// similarity; the standard algorithm (used by MSMBuilder, which grew out
/// of the same group) is k-centers on the pairwise RMSD metric, optionally
/// refined by a few k-medoids sweeps. Both are implemented here.

#include <cstdint>
#include <functional>
#include <vector>

#include "util/random.hpp"
#include "util/vec3.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::msm {

/// A set of conformations (each a Calpha coordinate vector) with the
/// optimal-superposition RMSD metric.
class ConformationSet {
public:
    void add(std::vector<Vec3> conformation);
    std::size_t size() const { return conformations_.size(); }
    bool empty() const { return conformations_.empty(); }
    const std::vector<Vec3>& operator[](std::size_t i) const {
        return conformations_[i];
    }

    /// RMSD between members i and j.
    double distance(std::size_t i, std::size_t j) const;

    /// RMSD between member i and an external conformation.
    double distanceTo(std::size_t i, const std::vector<Vec3>& x) const;

private:
    std::vector<std::vector<Vec3>> conformations_;
};

struct ClusteringResult {
    /// Index of each input conformation's cluster (size = input size).
    std::vector<int> assignments;
    /// Indices (into the input set) of the cluster representatives.
    std::vector<std::size_t> centers;
    /// Distance from each conformation to its assigned center.
    std::vector<double> distances;

    std::size_t numClusters() const { return centers.size(); }

    /// Number of members per cluster.
    std::vector<std::size_t> clusterSizes() const;
};

struct KCentersParams {
    std::size_t numClusters = 100;
    /// Stop early once the maximum point-to-center distance falls below
    /// this radius (0 disables the radius criterion).
    double stopRadius = 0.0;
    std::uint64_t seed = 0; ///< selects the first center
};

/// Gonzalez k-centers: repeatedly promote the point farthest from all
/// existing centers. Guarantees max-radius within 2x of optimal; O(k N)
/// metric evaluations. With a pool, the per-center RMSD sweep (the hot
/// loop) is chunked across threads; the result is identical to the serial
/// run — chunk results combine in deterministic order with the same
/// smallest-index-argmax tie-break the serial scan uses.
ClusteringResult kCenters(const ConformationSet& data,
                          const KCentersParams& params,
                          ThreadPool* pool = nullptr);

/// K-medoids refinement: alternately recompute each cluster's medoid and
/// reassign, for `sweeps` passes over the data. Improves cluster
/// compactness after k-centers.
ClusteringResult kMedoidsRefine(const ConformationSet& data,
                                ClusteringResult initial, int sweeps = 2,
                                std::uint64_t seed = 0);

/// Assigns external conformations to the nearest existing center.
std::vector<int> assignToCenters(const ConformationSet& data,
                                 const std::vector<std::size_t>& centers,
                                 const std::vector<std::vector<Vec3>>& xs);

} // namespace cop::msm
