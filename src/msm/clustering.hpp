#pragma once

/// \file clustering.hpp
/// Conformational clustering for Markov state models. The paper's MSM
/// plugin performs "kinetic clustering" into microstates using structural
/// similarity; the standard algorithm (used by MSMBuilder, which grew out
/// of the same group) is k-centers on the pairwise RMSD metric, optionally
/// refined by a few k-medoids sweeps. Both are implemented here.
///
/// Two optimisations keep the metric evaluations cheap and countable:
///  - every conformation added to a ConformationSet is cached centered with
///    its squared norm, so member-to-member RMSD skips the copy / center /
///    norm passes of md::rmsd (bit-identical result);
///  - k-centers and assignment prune provably-futile RMSD evaluations with
///    the triangle inequality against a center-center distance matrix, and
///    report calls-vs-pruned counters so the skip rate is observable.

#include <cstdint>
#include <span>
#include <vector>

#include "util/random.hpp"
#include "util/vec3.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::msm {

/// A set of conformations (each a Calpha coordinate vector) with the
/// optimal-superposition RMSD metric. Each member is stored twice: the
/// original coordinates (returned by operator[]; representatives seed new
/// simulations, so they must stay untranslated) and a centered copy with
/// its squared norm, which every distance call uses.
class ConformationSet {
public:
    void add(std::vector<Vec3> conformation);
    std::size_t size() const { return conformations_.size(); }
    bool empty() const { return conformations_.empty(); }
    const std::vector<Vec3>& operator[](std::size_t i) const {
        return conformations_[i];
    }

    /// Centered copy of member i / its squared norm (the RMSD cache).
    const std::vector<Vec3>& centered(std::size_t i) const {
        return centered_[i];
    }
    double squaredNorm(std::size_t i) const { return norm2_[i]; }

    /// RMSD between members i and j.
    double distance(std::size_t i, std::size_t j) const;

    /// RMSD between member i and an external conformation.
    double distanceTo(std::size_t i, const std::vector<Vec3>& x) const;

    /// RMSD between member i and an external conformation that the caller
    /// has already centered (with its squared norm); lets assignment center
    /// each probe once instead of once per center.
    double distanceToCentered(std::size_t i, std::span<const Vec3> x,
                              double squaredNormX) const;

private:
    std::vector<std::vector<Vec3>> conformations_;
    std::vector<std::vector<Vec3>> centered_;
    std::vector<double> norm2_;
};

/// RMSD evaluations performed vs skipped by the triangle-inequality bound.
/// Pruning never changes a result: an evaluation is skipped only when the
/// bound proves it could not strictly beat the current best distance.
struct RmsdCounters {
    std::uint64_t calls = 0;  ///< RMSD evaluations actually performed
    std::uint64_t pruned = 0; ///< evaluations skipped by the bound

    RmsdCounters& operator+=(const RmsdCounters& o) {
        calls += o.calls;
        pruned += o.pruned;
        return *this;
    }
    /// Fraction of candidate evaluations skipped (0 when nothing ran).
    double pruneFraction() const {
        const std::uint64_t total = calls + pruned;
        return total == 0 ? 0.0 : double(pruned) / double(total);
    }
};

struct ClusteringResult {
    /// Index of each input conformation's cluster (size = input size).
    std::vector<int> assignments;
    /// Indices (into the input set) of the cluster representatives.
    std::vector<std::size_t> centers;
    /// Distance from each conformation to its assigned center.
    std::vector<double> distances;
    /// Metric-evaluation accounting for the run that produced this result.
    RmsdCounters rmsd;

    std::size_t numClusters() const { return centers.size(); }

    /// Number of members per cluster.
    std::vector<std::size_t> clusterSizes() const;
};

struct KCentersParams {
    std::size_t numClusters = 100;
    /// Stop early once the maximum point-to-center distance falls below
    /// this radius (0 disables the radius criterion).
    double stopRadius = 0.0;
    std::uint64_t seed = 0; ///< selects the first center
    /// Skip RMSD evaluations the triangle inequality proves futile. The
    /// result is identical either way; off exists for tests/benchmarks.
    bool prune = true;
};

/// Gonzalez k-centers: repeatedly promote the point farthest from all
/// existing centers. Guarantees max-radius within 2x of optimal; O(k N)
/// metric evaluations. With a pool, the per-center RMSD sweep (the hot
/// loop) is chunked across threads; the result is identical to the serial
/// run — chunk results combine in deterministic order with the same
/// smallest-index-argmax tie-break the serial scan uses.
ClusteringResult kCenters(const ConformationSet& data,
                          const KCentersParams& params,
                          ThreadPool* pool = nullptr);

/// K-medoids refinement: alternately recompute each cluster's medoid and
/// reassign, for `sweeps` passes over the data. Improves cluster
/// compactness after k-centers.
ClusteringResult kMedoidsRefine(const ConformationSet& data,
                                ClusteringResult initial, int sweeps = 2,
                                std::uint64_t seed = 0);

/// Pairwise center-center RMSD matrix (row-major k*k), the lookup table the
/// triangle-inequality bound prunes against. O(k^2 / 2) RMSD evaluations,
/// chunked across the pool when given; adds the work to `counters` if
/// non-null.
std::vector<double> centerDistanceMatrix(const ConformationSet& data,
                                         const std::vector<std::size_t>& centers,
                                         ThreadPool* pool = nullptr,
                                         RmsdCounters* counters = nullptr);

/// Nearest-center assignment of a contiguous member range with distances
/// and counters — the incremental-build hot path.
struct AssignResult {
    std::vector<int> assignments; ///< one per assigned conformation
    std::vector<double> distances;
    RmsdCounters rmsd;
};

/// Assigns members [first, last) of `data` to the nearest of `centers`
/// (smallest center index wins ties, matching the serial scan). When
/// `centerDist` (from centerDistanceMatrix) is non-empty, candidate centers
/// the triangle inequality rules out are skipped without evaluating RMSD.
/// Chunked across the pool when given; bit-identical to the serial,
/// unpruned scan in all configurations.
AssignResult assignRangeToCenters(const ConformationSet& data,
                                  std::size_t first, std::size_t last,
                                  const std::vector<std::size_t>& centers,
                                  const std::vector<double>& centerDist = {},
                                  ThreadPool* pool = nullptr);

/// Assigns external conformations to the nearest existing center.
std::vector<int> assignToCenters(const ConformationSet& data,
                                 const std::vector<std::size_t>& centers,
                                 const std::vector<std::vector<Vec3>>& xs);

} // namespace cop::msm
