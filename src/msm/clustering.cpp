#include "msm/clustering.hpp"

#include <algorithm>
#include <limits>

#include "mdlib/observables.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cop::msm {

namespace {

/// Centers a probe conformation and accumulates its squared norm with the
/// same loop order md::rmsd uses, so cached-path results stay bit-identical.
std::vector<Vec3> centerProbe(const std::vector<Vec3>& x, double& squaredNorm) {
    std::vector<Vec3> cx(x);
    md::centerCoordinates(cx);
    squaredNorm = 0.0;
    for (const auto& v : cx) squaredNorm += norm2(v);
    return cx;
}

} // namespace

void ConformationSet::add(std::vector<Vec3> conformation) {
    COP_REQUIRE(!conformation.empty(), "empty conformation");
    if (!conformations_.empty())
        COP_REQUIRE(conformation.size() == conformations_.front().size(),
                    "conformation size mismatch");
    double g = 0.0;
    centered_.push_back(centerProbe(conformation, g));
    norm2_.push_back(g);
    conformations_.push_back(std::move(conformation));
}

double ConformationSet::distance(std::size_t i, std::size_t j) const {
    return md::rmsdCentered(centered_[i], centered_[j], norm2_[i], norm2_[j]);
}

double ConformationSet::distanceTo(std::size_t i,
                                   const std::vector<Vec3>& x) const {
    double g = 0.0;
    const auto cx = centerProbe(x, g);
    return distanceToCentered(i, cx, g);
}

double ConformationSet::distanceToCentered(std::size_t i,
                                           std::span<const Vec3> x,
                                           double squaredNormX) const {
    return md::rmsdCentered(centered_[i], x, norm2_[i], squaredNormX);
}

std::vector<std::size_t> ClusteringResult::clusterSizes() const {
    std::vector<std::size_t> sizes(centers.size(), 0);
    for (int a : assignments) ++sizes[std::size_t(a)];
    return sizes;
}

ClusteringResult kCenters(const ConformationSet& data,
                          const KCentersParams& params, ThreadPool* pool) {
    COP_REQUIRE(!data.empty(), "cannot cluster an empty set");
    COP_REQUIRE(params.numClusters >= 1, "need at least one cluster");
    const std::size_t n = data.size();
    const std::size_t k = std::min(params.numClusters, n);

    ClusteringResult result;
    result.assignments.assign(n, 0);
    result.distances.assign(n, std::numeric_limits<double>::max());

    // Lower-triangular center-center distances: ccRows[c][b] is the RMSD
    // between centers c and b (b < c), filled as center c is promoted. The
    // relax pass for center c skips point i when
    //   ccRows[c][assignment(i)] >= 2 * distance(i),
    // since then d(i, c) >= cc - d(i, b) >= d(i, b): the new center cannot
    // strictly beat the incumbent, and the strict < below means skipping
    // leaves the result bit-identical.
    std::vector<std::vector<double>> ccRows(k);

    struct Farthest {
        double dist = -1.0;
        std::size_t idx = 0;
    };
    struct ChunkOut {
        Farthest far;
        RmsdCounters rmsd;
    };
    // Relaxes [lo, hi) against the new center c and returns the local
    // farthest point. Writes to distances/assignments are disjoint per i,
    // so chunks can run concurrently; the counters are per-i decisions and
    // do not depend on the chunking.
    auto relaxRange = [&](std::size_t lo, std::size_t hi,
                          std::size_t center, int c) {
        ChunkOut out;
        const bool prune = params.prune && c > 0;
        const std::vector<double>& ccRow = ccRows[std::size_t(c)];
        for (std::size_t i = lo; i < hi; ++i) {
            if (prune &&
                ccRow[std::size_t(result.assignments[i])] >=
                    2.0 * result.distances[i]) {
                ++out.rmsd.pruned;
            } else {
                ++out.rmsd.calls;
                const double d = data.distance(i, center);
                if (d < result.distances[i]) {
                    result.distances[i] = d;
                    result.assignments[i] = c;
                }
            }
            if (result.distances[i] > out.far.dist) {
                out.far.dist = result.distances[i];
                out.far.idx = i;
            }
        }
        return out;
    };

    Rng rng(params.seed);
    std::size_t nextCenter = rng.uniformInt(n);
    for (std::size_t c = 0; c < k; ++c) {
        result.centers.push_back(nextCenter);
        if (params.prune && c > 0) {
            auto& row = ccRows[c];
            row.reserve(c);
            for (std::size_t b = 0; b < c; ++b) {
                row.push_back(data.distance(nextCenter, result.centers[b]));
                ++result.rmsd.calls;
            }
        }
        // Relax assignments against the new center and find the farthest
        // point, which becomes the next center. Chunks combine in order
        // with a strict >, reproducing the serial smallest-index argmax.
        ChunkOut out;
        if (pool != nullptr && pool->size() > 1 && n >= 64) {
            out = pool->parallelReduceChunked(
                std::size_t{0}, n, ChunkOut{},
                [&](std::size_t lo, std::size_t hi) {
                    return relaxRange(lo, hi, nextCenter, int(c));
                },
                [](ChunkOut a, const ChunkOut& b) {
                    if (b.far.dist > a.far.dist) a.far = b.far;
                    a.rmsd += b.rmsd;
                    return a;
                });
        } else {
            out = relaxRange(0, n, nextCenter, int(c));
        }
        result.rmsd += out.rmsd;
        if (params.stopRadius > 0.0 && out.far.dist < params.stopRadius)
            break;
        nextCenter = out.far.idx;
    }
    return result;
}

ClusteringResult kMedoidsRefine(const ConformationSet& data,
                                ClusteringResult initial, int sweeps,
                                std::uint64_t seed) {
    COP_REQUIRE(!initial.centers.empty(), "no initial clustering");
    const std::size_t n = data.size();
    const std::size_t k = initial.centers.size();
    Rng rng(seed);

    for (int sweep = 0; sweep < sweeps; ++sweep) {
        // Medoid update: for each cluster, try a random member as the new
        // medoid and keep it if it lowers the within-cluster distance sum.
        std::vector<std::vector<std::size_t>> members(k);
        for (std::size_t i = 0; i < n; ++i)
            members[std::size_t(initial.assignments[i])].push_back(i);
        for (std::size_t c = 0; c < k; ++c) {
            if (members[c].size() < 2) continue;
            const std::size_t cur = initial.centers[c];
            const std::size_t cand =
                members[c][rng.uniformInt(members[c].size())];
            if (cand == cur) continue;
            double curCost = 0.0, candCost = 0.0;
            for (std::size_t m : members[c]) {
                curCost += data.distance(m, cur);
                candCost += data.distance(m, cand);
                initial.rmsd.calls += 2;
            }
            if (candCost < curCost) initial.centers[c] = cand;
        }
        // Reassignment pass.
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            int bestC = initial.assignments[i];
            for (std::size_t c = 0; c < k; ++c) {
                const double d = data.distance(i, initial.centers[c]);
                ++initial.rmsd.calls;
                if (d < best) {
                    best = d;
                    bestC = int(c);
                }
            }
            initial.assignments[i] = bestC;
            initial.distances[i] = best;
        }
    }
    return initial;
}

std::vector<double> centerDistanceMatrix(
    const ConformationSet& data, const std::vector<std::size_t>& centers,
    ThreadPool* pool, RmsdCounters* counters) {
    const std::size_t k = centers.size();
    std::vector<double> m(k * k, 0.0);
    // Each chunk owns rows [lo, hi) and writes the (c, j > c) pairs plus
    // their mirrors; every cell is written by exactly one chunk.
    auto rows = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c)
            for (std::size_t j = c + 1; j < k; ++j) {
                const double d = data.distance(centers[c], centers[j]);
                m[c * k + j] = d;
                m[j * k + c] = d;
            }
    };
    if (pool != nullptr && pool->size() > 1 && k >= 16) {
        pool->forChunksGrained(
            0, k, 4,
            [&](std::size_t, std::size_t lo, std::size_t hi) {
                rows(lo, hi);
            });
    } else {
        rows(0, k);
    }
    if (counters != nullptr) counters->calls += k * (k - 1) / 2;
    return m;
}

AssignResult assignRangeToCenters(const ConformationSet& data,
                                  std::size_t first, std::size_t last,
                                  const std::vector<std::size_t>& centers,
                                  const std::vector<double>& centerDist,
                                  ThreadPool* pool) {
    COP_REQUIRE(!centers.empty(), "no centers");
    COP_REQUIRE(first <= last && last <= data.size(),
                "assignment range out of bounds");
    COP_REQUIRE(centerDist.empty() ||
                    centerDist.size() == centers.size() * centers.size(),
                "center distance matrix size mismatch");
    const std::size_t k = centers.size();
    const std::size_t n = last - first;

    AssignResult out;
    out.assignments.assign(n, 0);
    out.distances.assign(n, 0.0);

    // Per-probe scan: evaluate center 0, then visit centers in index order,
    // skipping any candidate whose distance to the incumbent proves it
    // cannot strictly win: d(x, c) >= cc(best, c) - d(x, best) >= d(x, best)
    // whenever cc(best, c) >= 2 d(x, best). Ties keep the smaller index,
    // exactly like the unpruned scan's strict <.
    auto assignChunk = [&](std::size_t lo, std::size_t hi) {
        RmsdCounters counters;
        for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t member = first + i;
            double best = data.distance(member, centers[0]);
            ++counters.calls;
            std::size_t bestC = 0;
            for (std::size_t c = 1; c < k; ++c) {
                if (!centerDist.empty() &&
                    centerDist[bestC * k + c] >= 2.0 * best) {
                    ++counters.pruned;
                    continue;
                }
                ++counters.calls;
                const double d = data.distance(member, centers[c]);
                if (d < best) {
                    best = d;
                    bestC = c;
                }
            }
            out.assignments[i] = int(bestC);
            out.distances[i] = best;
        }
        return counters;
    };

    if (pool != nullptr && pool->size() > 1 && n >= 2) {
        // Writes are disjoint per probe; counters are per-probe decisions,
        // so the totals do not depend on the chunking.
        const std::size_t nChunks = pool->chunkCountForGrained(n, 16);
        std::vector<RmsdCounters> partial(nChunks);
        pool->forChunksGrained(
            0, n, 16, [&](std::size_t c, std::size_t lo, std::size_t hi) {
                partial[c] = assignChunk(lo, hi);
            });
        for (const auto& p : partial) out.rmsd += p;
    } else {
        out.rmsd = assignChunk(0, n);
    }
    return out;
}

std::vector<int> assignToCenters(const ConformationSet& data,
                                 const std::vector<std::size_t>& centers,
                                 const std::vector<std::vector<Vec3>>& xs) {
    COP_REQUIRE(!centers.empty(), "no centers");
    std::vector<int> out;
    out.reserve(xs.size());
    for (const auto& x : xs) {
        double g = 0.0;
        const auto cx = centerProbe(x, g);
        double best = std::numeric_limits<double>::max();
        int bestC = 0;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            const double d = data.distanceToCentered(centers[c], cx, g);
            if (d < best) {
                best = d;
                bestC = int(c);
            }
        }
        out.push_back(bestC);
    }
    return out;
}

} // namespace cop::msm
