#include "msm/clustering.hpp"

#include <algorithm>
#include <limits>

#include "mdlib/observables.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cop::msm {

void ConformationSet::add(std::vector<Vec3> conformation) {
    COP_REQUIRE(!conformation.empty(), "empty conformation");
    if (!conformations_.empty())
        COP_REQUIRE(conformation.size() == conformations_.front().size(),
                    "conformation size mismatch");
    conformations_.push_back(std::move(conformation));
}

double ConformationSet::distance(std::size_t i, std::size_t j) const {
    return md::rmsd(conformations_[i], conformations_[j]);
}

double ConformationSet::distanceTo(std::size_t i,
                                   const std::vector<Vec3>& x) const {
    return md::rmsd(conformations_[i], x);
}

std::vector<std::size_t> ClusteringResult::clusterSizes() const {
    std::vector<std::size_t> sizes(centers.size(), 0);
    for (int a : assignments) ++sizes[std::size_t(a)];
    return sizes;
}

ClusteringResult kCenters(const ConformationSet& data,
                          const KCentersParams& params, ThreadPool* pool) {
    COP_REQUIRE(!data.empty(), "cannot cluster an empty set");
    COP_REQUIRE(params.numClusters >= 1, "need at least one cluster");
    const std::size_t n = data.size();
    const std::size_t k = std::min(params.numClusters, n);

    ClusteringResult result;
    result.assignments.assign(n, 0);
    result.distances.assign(n, std::numeric_limits<double>::max());

    // Relaxes [lo, hi) against the new center c and returns the local
    // farthest point. Writes to distances/assignments are disjoint per i,
    // so chunks can run concurrently.
    struct Farthest {
        double dist = -1.0;
        std::size_t idx = 0;
    };
    auto relaxRange = [&](std::size_t lo, std::size_t hi,
                          std::size_t center, int c) {
        Farthest far;
        for (std::size_t i = lo; i < hi; ++i) {
            const double d = data.distance(i, center);
            if (d < result.distances[i]) {
                result.distances[i] = d;
                result.assignments[i] = c;
            }
            if (result.distances[i] > far.dist) {
                far.dist = result.distances[i];
                far.idx = i;
            }
        }
        return far;
    };

    Rng rng(params.seed);
    std::size_t nextCenter = rng.uniformInt(n);
    for (std::size_t c = 0; c < k; ++c) {
        result.centers.push_back(nextCenter);
        // Relax assignments against the new center and find the farthest
        // point, which becomes the next center. Chunks combine in order
        // with a strict >, reproducing the serial smallest-index argmax.
        Farthest far;
        if (pool != nullptr && pool->size() > 1 && n >= 64) {
            far = pool->parallelReduceChunked(
                std::size_t{0}, n, Farthest{},
                [&](std::size_t lo, std::size_t hi) {
                    return relaxRange(lo, hi, nextCenter, int(c));
                },
                [](Farthest a, const Farthest& b) {
                    return b.dist > a.dist ? b : a;
                });
        } else {
            far = relaxRange(0, n, nextCenter, int(c));
        }
        if (params.stopRadius > 0.0 && far.dist < params.stopRadius) break;
        nextCenter = far.idx;
    }
    return result;
}

ClusteringResult kMedoidsRefine(const ConformationSet& data,
                                ClusteringResult initial, int sweeps,
                                std::uint64_t seed) {
    COP_REQUIRE(!initial.centers.empty(), "no initial clustering");
    const std::size_t n = data.size();
    const std::size_t k = initial.centers.size();
    Rng rng(seed);

    for (int sweep = 0; sweep < sweeps; ++sweep) {
        // Medoid update: for each cluster, try a random member as the new
        // medoid and keep it if it lowers the within-cluster distance sum.
        std::vector<std::vector<std::size_t>> members(k);
        for (std::size_t i = 0; i < n; ++i)
            members[std::size_t(initial.assignments[i])].push_back(i);
        for (std::size_t c = 0; c < k; ++c) {
            if (members[c].size() < 2) continue;
            const std::size_t cur = initial.centers[c];
            const std::size_t cand =
                members[c][rng.uniformInt(members[c].size())];
            if (cand == cur) continue;
            double curCost = 0.0, candCost = 0.0;
            for (std::size_t m : members[c]) {
                curCost += data.distance(m, cur);
                candCost += data.distance(m, cand);
            }
            if (candCost < curCost) initial.centers[c] = cand;
        }
        // Reassignment pass.
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            int bestC = initial.assignments[i];
            for (std::size_t c = 0; c < k; ++c) {
                const double d = data.distance(i, initial.centers[c]);
                if (d < best) {
                    best = d;
                    bestC = int(c);
                }
            }
            initial.assignments[i] = bestC;
            initial.distances[i] = best;
        }
    }
    return initial;
}

std::vector<int> assignToCenters(const ConformationSet& data,
                                 const std::vector<std::size_t>& centers,
                                 const std::vector<std::vector<Vec3>>& xs) {
    COP_REQUIRE(!centers.empty(), "no centers");
    std::vector<int> out;
    out.reserve(xs.size());
    for (const auto& x : xs) {
        double best = std::numeric_limits<double>::max();
        int bestC = 0;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            const double d = data.distanceTo(centers[c], x);
            if (d < best) {
                best = d;
                bestC = int(c);
            }
        }
        out.push_back(bestC);
    }
    return out;
}

} // namespace cop::msm
