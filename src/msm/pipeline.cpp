#include "msm/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cop::msm {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double maxOf(const std::vector<double>& v) {
    double m = 0.0;
    for (double d : v) m = std::max(m, d);
    return m;
}

MarkovModelParams modelParams(const MsmPipelineParams& params) {
    MarkovModelParams mp;
    mp.lag = params.lag;
    mp.estimator = params.estimator;
    mp.pseudocount = params.pseudocount;
    return mp;
}

} // namespace

std::string MsmStats::summary() const {
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "msm gen %zu %s: snapshots %zu (+%zu), rmsd %llu calls / %llu "
        "pruned (%.0f%% skipped), radius %.4g (at full %.4g), "
        "%.3fs = cluster %.3f + assign %.3f + count %.3f + estimate %.3f",
        generation, fullRebuild ? "FULL" : "incr", snapshotsTotal,
        snapshotsNew, (unsigned long long)rmsd.calls,
        (unsigned long long)rmsd.pruned, 100.0 * rmsd.pruneFraction(),
        clusterRadius, radiusAtFull, totalSeconds(), clusterSeconds,
        assignSeconds, countSeconds, estimateSeconds);
    return buf;
}

std::vector<bool> MsmPipelineResult::observedStates() const {
    std::vector<bool> obs(populations.size());
    for (std::size_t i = 0; i < populations.size(); ++i)
        obs[i] = populations[i] > 0;
    return obs;
}

MsmPipelineResult buildMsm(const TrajectoryRefs& trajectories,
                           const MsmPipelineParams& params,
                           ThreadPool* pool) {
    COP_REQUIRE(params.snapshotStride >= 1, "snapshotStride must be >= 1");
    COP_REQUIRE(params.numClusters >= 2, "need at least 2 clusters");

    // Gather snapshots, remembering which trajectory each came from.
    ConformationSet snapshots;
    std::vector<std::size_t> trajOf;
    std::vector<std::size_t> snapshotsPerTraj(trajectories.size(), 0);
    for (std::size_t t = 0; t < trajectories.size(); ++t) {
        COP_REQUIRE(trajectories[t] != nullptr, "null trajectory");
        const auto& traj = *trajectories[t];
        for (std::size_t f = 0; f < traj.numFrames();
             f += params.snapshotStride) {
            snapshots.add(traj.frame(f).positions);
            trajOf.push_back(t);
            ++snapshotsPerTraj[t];
        }
    }
    COP_REQUIRE(!snapshots.empty(), "no snapshots to cluster");

    MsmPipelineResult result;
    result.stats.fullRebuild = true;
    result.stats.snapshotsTotal = snapshots.size();
    result.stats.snapshotsNew = snapshots.size();

    const auto tCluster = Clock::now();
    KCentersParams kc;
    kc.numClusters = params.numClusters;
    kc.seed = params.seed;
    kc.prune = params.prune;
    result.clustering = kCenters(snapshots, kc, pool);
    if (params.medoidSweeps > 0)
        result.clustering = kMedoidsRefine(snapshots,
                                           std::move(result.clustering),
                                           params.medoidSweeps, params.seed);
    result.stats.clusterSeconds = secondsSince(tCluster);
    result.stats.rmsd = result.clustering.rmsd;
    result.stats.clusterRadius = maxOf(result.clustering.distances);
    result.stats.radiusAtFull = result.stats.clusterRadius;

    const std::size_t k = result.clustering.numClusters();

    // Split the flat assignment list back into per-trajectory discrete
    // trajectories (snapshots were appended trajectory-major).
    result.discrete.assign(trajectories.size(), {});
    for (std::size_t t = 0; t < trajectories.size(); ++t)
        result.discrete[t].reserve(snapshotsPerTraj[t]);
    for (std::size_t s = 0; s < snapshots.size(); ++s)
        result.discrete[trajOf[s]].push_back(result.clustering.assignments[s]);

    const auto tCount = Clock::now();
    result.sparseCounts =
        countTransitionsSparse(result.discrete, k, params.lag, pool);
    result.counts = result.sparseCounts.toDense();
    result.stats.countSeconds = secondsSince(tCount);

    const auto tEstimate = Clock::now();
    result.model =
        MarkovStateModel::fromCounts(result.sparseCounts, modelParams(params));
    result.stats.estimateSeconds = secondsSince(tEstimate);

    result.centers.reserve(k);
    for (std::size_t c = 0; c < k; ++c)
        result.centers.push_back(snapshots[result.clustering.centers[c]]);

    result.populations.assign(k, 0);
    for (int a : result.clustering.assignments)
        ++result.populations[std::size_t(a)];

    return result;
}

MsmPipelineResult buildMsm(const std::vector<md::Trajectory>& trajectories,
                           const MsmPipelineParams& params,
                           ThreadPool* pool) {
    TrajectoryRefs refs;
    refs.reserve(trajectories.size());
    for (const auto& traj : trajectories) refs.push_back(&traj);
    return buildMsm(refs, params, pool);
}

void IncrementalMsmBuilder::reorderTrajectoryMajor() {
    // Snapshots arrive generation-major; full rebuilds must see them
    // trajectory-major to be bit-identical to buildMsm. Skip the copy when
    // the store is already in order (e.g. the first build).
    bool ordered = true;
    std::size_t next = 0;
    for (const auto& st : states_) {
        for (std::size_t idx : st.snapIdx)
            if (idx != next++) {
                ordered = false;
                break;
            }
        if (!ordered) break;
    }
    if (ordered) return;

    ConformationSet reordered;
    for (auto& st : states_)
        for (std::size_t& idx : st.snapIdx) {
            const std::size_t newIdx = reordered.size();
            reordered.add(snapshots_[idx]);
            idx = newIdx;
        }
    snapshots_ = std::move(reordered);
    // assignments_/distances_ are stale now; fullRebuild overwrites them.
}

void IncrementalMsmBuilder::fullRebuild(MsmStats& stats, ThreadPool* pool) {
    const auto& pp = params_.pipeline;
    stats.fullRebuild = true;
    reorderTrajectoryMajor();

    const auto tCluster = Clock::now();
    KCentersParams kc;
    kc.numClusters = pp.numClusters;
    kc.seed = pp.seed;
    kc.prune = pp.prune;
    ClusteringResult clustering = kCenters(snapshots_, kc, pool);
    if (pp.medoidSweeps > 0)
        clustering = kMedoidsRefine(snapshots_, std::move(clustering),
                                    pp.medoidSweeps, pp.seed);
    stats.clusterSeconds += secondsSince(tCluster);
    stats.rmsd += clustering.rmsd;

    assignments_ = std::move(clustering.assignments);
    distances_ = std::move(clustering.distances);
    centers_ = std::move(clustering.centers);
    centerDist_.clear(); // rebuilt lazily on the next incremental update
    radiusAtFull_ = maxOf(distances_);
    maxRadius_ = radiusAtFull_;
    kAtFull_ = pp.numClusters;

    std::vector<DiscreteTrajectory> discrete;
    discrete.reserve(states_.size());
    for (auto& st : states_) {
        st.discrete.clear();
        st.discrete.reserve(st.snapIdx.size());
        for (std::size_t idx : st.snapIdx)
            st.discrete.push_back(assignments_[idx]);
        st.countedLength = st.discrete.size();
        discrete.push_back(st.discrete);
    }

    const auto tCount = Clock::now();
    counts_ = countTransitionsSparse(discrete, centers_.size(), pp.lag, pool);
    stats.countSeconds += secondsSince(tCount);
}

MsmPipelineResult IncrementalMsmBuilder::assembleResult(MsmStats stats) {
    const auto& pp = params_.pipeline;
    const std::size_t k = centers_.size();

    MsmPipelineResult result;
    result.clustering.assignments = assignments_;
    result.clustering.centers = centers_;
    result.clustering.distances = distances_;
    result.discrete.reserve(states_.size());
    for (const auto& st : states_) result.discrete.push_back(st.discrete);
    result.sparseCounts = counts_;
    result.counts = counts_.toDense();

    const auto tEstimate = Clock::now();
    result.model = MarkovStateModel::fromCounts(counts_, modelParams(pp));
    stats.estimateSeconds += secondsSince(tEstimate);

    result.centers.reserve(k);
    for (std::size_t c = 0; c < k; ++c)
        result.centers.push_back(snapshots_[centers_[c]]);
    result.populations.assign(k, 0);
    for (int a : assignments_) ++result.populations[std::size_t(a)];

    stats.clusterRadius = maxRadius_;
    stats.radiusAtFull = radiusAtFull_;
    cumulativeRmsd_ += stats.rmsd;
    result.clustering.rmsd = cumulativeRmsd_;
    result.stats = stats;
    history_.push_back(std::move(stats));
    return result;
}

MsmPipelineResult IncrementalMsmBuilder::update(
    const std::vector<std::pair<int, const md::Trajectory*>>& trajectories,
    ThreadPool* pool) {
    const auto& pp = params_.pipeline;
    COP_REQUIRE(pp.snapshotStride >= 1, "snapshotStride must be >= 1");
    COP_REQUIRE(pp.numClusters >= 2, "need at least 2 clusters");
    ++generation_;

    MsmStats stats;
    stats.generation = generation_;

    // Ingest new frames: each trajectory is keyed by a stable id and may
    // only grow between updates; only frames past the last sampled one are
    // snapshotted.
    const std::size_t oldFlat = snapshots_.size();
    for (const auto& [id, traj] : trajectories) {
        COP_REQUIRE(traj != nullptr, "null trajectory");
        auto [it, inserted] = idToState_.try_emplace(id, states_.size());
        if (inserted) states_.emplace_back();
        TrajState& st = states_[it->second];
        for (std::size_t f = st.nextSnapshotFrame; f < traj->numFrames();
             f += pp.snapshotStride) {
            st.snapIdx.push_back(snapshots_.size());
            snapshots_.add(traj->frame(f).positions);
            st.nextSnapshotFrame = f + pp.snapshotStride;
        }
    }
    COP_REQUIRE(!snapshots_.empty(), "no snapshots to cluster");
    stats.snapshotsTotal = snapshots_.size();
    stats.snapshotsNew = snapshots_.size() - oldFlat;

    bool needFull = centers_.empty() || kAtFull_ != pp.numClusters ||
                    params_.rebuildRadiusFactor <= 0.0;

    if (!needFull && stats.snapshotsNew > 0) {
        // Assign only the new snapshots to the frozen centers, then check
        // whether coverage degraded past the rebuild threshold.
        const auto tAssign = Clock::now();
        if (centerDist_.empty() && pp.prune) {
            RmsdCounters cc;
            centerDist_ =
                centerDistanceMatrix(snapshots_, centers_, pool, &cc);
            stats.rmsd += cc;
        }
        // centerDist_ is only ever built when pruning is on; when off it
        // stays empty, which assignRangeToCenters treats as "no pruning".
        AssignResult assigned =
            assignRangeToCenters(snapshots_, oldFlat, snapshots_.size(),
                                 centers_, centerDist_, pool);
        stats.assignSeconds += secondsSince(tAssign);
        stats.rmsd += assigned.rmsd;

        const double newMax = std::max(maxRadius_, maxOf(assigned.distances));
        if (newMax > params_.rebuildRadiusFactor * radiusAtFull_) {
            needFull = true; // frozen centers no longer cover the data
        } else {
            maxRadius_ = newMax;
            assignments_.insert(assignments_.end(),
                                assigned.assignments.begin(),
                                assigned.assignments.end());
            distances_.insert(distances_.end(), assigned.distances.begin(),
                              assigned.distances.end());
            // Extend the discrete trajectories and count only the windows
            // that end in the newly appended suffixes.
            const auto tCount = Clock::now();
            for (auto& st : states_) {
                while (st.discrete.size() < st.snapIdx.size()) {
                    const std::size_t idx = st.snapIdx[st.discrete.size()];
                    st.discrete.push_back(assignments_[idx]);
                }
                if (st.discrete.size() > st.countedLength) {
                    addSuffixTransitions(counts_, st.discrete, pp.lag,
                                         st.countedLength);
                    st.countedLength = st.discrete.size();
                }
            }
            stats.countSeconds += secondsSince(tCount);
        }
    }

    if (needFull) fullRebuild(stats, pool);
    return assembleResult(std::move(stats));
}

std::vector<std::vector<double>> impliedTimescaleSweep(
    const std::vector<DiscreteTrajectory>& discrete, std::size_t numStates,
    const std::vector<std::size_t>& lags, std::size_t nTimescales,
    EstimatorKind estimator) {
    // One counting pass shared by every lag, instead of re-walking the
    // trajectories per lag.
    const auto countsPerLag =
        countTransitionsMultiLag(discrete, numStates, lags);
    std::vector<std::vector<double>> out;
    out.reserve(lags.size());
    for (std::size_t l = 0; l < lags.size(); ++l) {
        MarkovModelParams mp;
        mp.lag = lags[l];
        mp.estimator = estimator;
        const auto model = MarkovStateModel::fromCounts(countsPerLag[l], mp);
        out.push_back(model.impliedTimescales(nTimescales));
    }
    return out;
}

} // namespace cop::msm
