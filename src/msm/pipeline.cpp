#include "msm/pipeline.hpp"

#include "util/error.hpp"

namespace cop::msm {

std::vector<bool> MsmPipelineResult::observedStates() const {
    std::vector<bool> obs(populations.size());
    for (std::size_t i = 0; i < populations.size(); ++i)
        obs[i] = populations[i] > 0;
    return obs;
}

MsmPipelineResult buildMsm(const std::vector<md::Trajectory>& trajectories,
                           const MsmPipelineParams& params) {
    COP_REQUIRE(params.snapshotStride >= 1, "snapshotStride must be >= 1");
    COP_REQUIRE(params.numClusters >= 2, "need at least 2 clusters");

    // Gather snapshots, remembering which trajectory each came from.
    ConformationSet snapshots;
    std::vector<std::size_t> trajOf;
    std::vector<std::size_t> snapshotsPerTraj(trajectories.size(), 0);
    for (std::size_t t = 0; t < trajectories.size(); ++t) {
        const auto& traj = trajectories[t];
        for (std::size_t f = 0; f < traj.numFrames();
             f += params.snapshotStride) {
            snapshots.add(traj.frame(f).positions);
            trajOf.push_back(t);
            ++snapshotsPerTraj[t];
        }
    }
    COP_REQUIRE(!snapshots.empty(), "no snapshots to cluster");

    MsmPipelineResult result;
    KCentersParams kc;
    kc.numClusters = params.numClusters;
    kc.seed = params.seed;
    result.clustering = kCenters(snapshots, kc);
    if (params.medoidSweeps > 0)
        result.clustering = kMedoidsRefine(snapshots,
                                           std::move(result.clustering),
                                           params.medoidSweeps, params.seed);

    const std::size_t k = result.clustering.numClusters();

    // Split the flat assignment list back into per-trajectory discrete
    // trajectories (snapshots were appended trajectory-major).
    result.discrete.assign(trajectories.size(), {});
    for (std::size_t t = 0; t < trajectories.size(); ++t)
        result.discrete[t].reserve(snapshotsPerTraj[t]);
    for (std::size_t s = 0; s < snapshots.size(); ++s)
        result.discrete[trajOf[s]].push_back(result.clustering.assignments[s]);

    result.counts = countTransitions(result.discrete, k, params.lag);

    MarkovModelParams mp;
    mp.lag = params.lag;
    mp.estimator = params.estimator;
    mp.pseudocount = params.pseudocount;
    result.model = MarkovStateModel::fromCounts(result.counts, mp);

    result.centers.reserve(k);
    for (std::size_t c = 0; c < k; ++c)
        result.centers.push_back(snapshots[result.clustering.centers[c]]);

    result.populations.assign(k, 0);
    for (int a : result.clustering.assignments)
        ++result.populations[std::size_t(a)];

    return result;
}

std::vector<std::vector<double>> impliedTimescaleSweep(
    const std::vector<DiscreteTrajectory>& discrete, std::size_t numStates,
    const std::vector<std::size_t>& lags, std::size_t nTimescales,
    EstimatorKind estimator) {
    std::vector<std::vector<double>> out;
    out.reserve(lags.size());
    for (std::size_t lag : lags) {
        MarkovModelParams mp;
        mp.lag = lag;
        mp.estimator = estimator;
        const auto model =
            MarkovStateModel::fromTrajectories(discrete, numStates, mp);
        out.push_back(model.impliedTimescales(nTimescales));
    }
    return out;
}

} // namespace cop::msm
