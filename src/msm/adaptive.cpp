#include "msm/adaptive.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cop::msm {

int AdaptivePlan::totalSeeds() const {
    return std::accumulate(seedsPerState.begin(), seedsPerState.end(), 0);
}

std::vector<double> adaptiveWeights(const DenseMatrix& counts,
                                    const std::vector<bool>& observed) {
    COP_REQUIRE(counts.rows() == observed.size(), "size mismatch");
    std::vector<double> w(observed.size(), 0.0);
    for (std::size_t i = 0; i < observed.size(); ++i) {
        if (!observed[i]) continue;
        double out = 0.0;
        for (std::size_t j = 0; j < counts.cols(); ++j) out += counts(i, j);
        w[i] = 1.0 / (out + 1.0);
    }
    return w;
}

AdaptivePlan planAdaptiveSampling(const DenseMatrix& counts,
                                  const std::vector<bool>& observed,
                                  const AdaptiveParams& params) {
    COP_REQUIRE(counts.rows() == counts.cols(), "counts must be square");
    COP_REQUIRE(counts.rows() == observed.size(), "size mismatch");
    COP_REQUIRE(params.totalSeeds >= 0, "negative seed count");

    const std::size_t n = observed.size();
    AdaptivePlan plan;
    plan.seedsPerState.assign(n, 0);

    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < n; ++i)
        if (observed[i]) eligible.push_back(i);
    if (eligible.empty() || params.totalSeeds == 0) return plan;

    std::vector<double> weights(n, 0.0);
    if (params.scheme == WeightingScheme::Even) {
        for (std::size_t i : eligible) weights[i] = 1.0;
    } else {
        weights = adaptiveWeights(counts, observed);
    }
    double totalW = std::accumulate(weights.begin(), weights.end(), 0.0);
    COP_ENSURE(totalW > 0.0, "no positive weights");

    // Largest-remainder apportionment: deterministic, exact total.
    std::vector<double> exact(n, 0.0);
    int assigned = 0;
    for (std::size_t i : eligible) {
        exact[i] = params.totalSeeds * weights[i] / totalW;
        plan.seedsPerState[i] = int(exact[i]);
        assigned += plan.seedsPerState[i];
    }
    // Distribute the remainder to the largest fractional parts; break ties
    // by a seeded shuffle for statistical fairness across rounds.
    std::vector<std::size_t> order = eligible;
    Rng rng(params.seed);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniformInt(i)]);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         const double fa = exact[a] - int(exact[a]);
                         const double fb = exact[b] - int(exact[b]);
                         return fa > fb;
                     });
    for (std::size_t k = 0; assigned < params.totalSeeds; ++k) {
        ++plan.seedsPerState[order[k % order.size()]];
        ++assigned;
    }
    return plan;
}

} // namespace cop::msm
