#pragma once

/// \file markov_model.hpp
/// Markov state model estimation and analysis: transition-matrix
/// estimators, stationary distribution, propagation p(t+tau) = p(t) T(tau)
/// (paper Eq. 1), implied timescales, mean first-passage times and
/// committors.

#include <cstddef>
#include <optional>
#include <vector>

#include "msm/linalg.hpp"
#include "msm/transition_counts.hpp"

namespace cop::msm {

enum class EstimatorKind {
    /// Naive maximum likelihood: T_ij = C_ij / sum_j C_ij. Not reversible.
    RowNormalized,
    /// Symmetrized counts (C + C^T)/2 then row-normalized: enforces
    /// detailed balance cheaply, but biases the stationary distribution
    /// towards the *sampling* distribution — a problem under adaptive
    /// sampling, which deliberately flattens sampling across states.
    Symmetrized,
    /// Reversible maximum-likelihood estimator (standard fixed-point
    /// iteration on the symmetric flow matrix x_ij): detailed balance
    /// without tying pi to the sampling distribution. Preferred for
    /// adaptive-sampling data; the default for the MSM controller.
    ReversibleMle,
};

struct MarkovModelParams {
    std::size_t lag = 1; ///< in snapshot intervals
    EstimatorKind estimator = EstimatorKind::ReversibleMle;
    int mleIterations = 1000;
    double mleTolerance = 1e-12;
    /// Prior pseudocount added to observed transitions (not to unobserved
    /// pairs), stabilizing rows with very few counts. 0 disables.
    double pseudocount = 0.0;
};

/// A fully estimated MSM over the largest connected subset of the input.
class MarkovStateModel {
public:
    /// Builds from a count matrix over all microstates; restricts to the
    /// largest strongly connected set automatically.
    static MarkovStateModel fromCounts(const DenseMatrix& counts,
                                       const MarkovModelParams& params);

    /// Sparse overload: restriction runs on the sparse counts (touching
    /// only nonzeros); estimation then proceeds on the dense restricted
    /// matrix exactly as the dense overload does, so the two produce
    /// identical models for equal counts.
    static MarkovStateModel fromCounts(const SparseCounts& counts,
                                       const MarkovModelParams& params);

    /// Convenience: count + estimate in one step.
    static MarkovStateModel fromTrajectories(
        const std::vector<DiscreteTrajectory>& trajs, std::size_t numStates,
        const MarkovModelParams& params);

    std::size_t numStates() const { return transition_.rows(); }
    const DenseMatrix& transitionMatrix() const { return transition_; }
    const DenseMatrix& countMatrix() const { return activeCounts_; }
    const MarkovModelParams& params() const { return params_; }

    /// Original microstate index of active state a.
    int activeState(std::size_t a) const { return activeStates_[a]; }
    const std::vector<int>& activeStates() const { return activeStates_; }
    /// Maps an original microstate index to its active index, or -1.
    int toActiveIndex(int microstate) const;

    /// Stationary distribution (left eigenvector of T with eigenvalue 1),
    /// computed by power iteration; cached.
    const std::vector<double>& stationaryDistribution() const;

    /// One propagation step: p' = p T (paper Eq. 1).
    std::vector<double> propagate(const std::vector<double>& p) const;

    /// n propagation steps.
    std::vector<double> propagate(std::vector<double> p,
                                  std::size_t nSteps) const;

    /// Leading eigenvalues (descending; includes the trivial 1.0) computed
    /// from the symmetrized transition matrix. Requires the Symmetrized
    /// estimator for exactness; for RowNormalized it is an approximation.
    std::vector<double> eigenvalues(std::size_t count) const;

    /// Implied timescales t_k = -lag / ln(lambda_k) for k >= 1 (skipping
    /// the stationary eigenvalue), in snapshot-interval units.
    std::vector<double> impliedTimescales(std::size_t count) const;

    /// Mean first-passage time from each active state to the target set
    /// (active indices), in lag units; solves the standard linear system.
    std::vector<double> meanFirstPassageTimes(
        const std::vector<int>& targetActiveStates) const;

    /// Forward committor from source set A to sink set B (active indices).
    std::vector<double> committor(const std::vector<int>& sourceA,
                                  const std::vector<int>& sinkB) const;

private:
    /// Shared estimation tail of both fromCounts overloads: takes the
    /// already-restricted active-set counts and runs the estimator.
    static MarkovStateModel fromActiveCounts(std::vector<int> activeStates,
                                             DenseMatrix activeCounts,
                                             std::size_t numMicrostates,
                                             const MarkovModelParams& params);

    DenseMatrix transition_;
    DenseMatrix activeCounts_;
    std::vector<int> activeStates_;
    std::vector<int> toActive_;
    MarkovModelParams params_;
    mutable std::optional<std::vector<double>> stationary_;
};

/// Reversible transition-matrix MLE via the standard fixed-point iteration
/// on the symmetric flow matrix; exposed for tests and direct use.
DenseMatrix estimateReversibleMle(const DenseMatrix& counts,
                                  int maxIterations = 1000,
                                  double tolerance = 1e-12);

/// Chapman-Kolmogorov test: max |T(lag)^k - T(k*lag)| over entries, for a
/// model re-estimated at lag k*lag from the same trajectories. Small values
/// indicate Markovian behaviour at `lag`.
double chapmanKolmogorovError(const std::vector<DiscreteTrajectory>& trajs,
                              std::size_t numStates, std::size_t lag,
                              std::size_t k,
                              const MarkovModelParams& params);

} // namespace cop::msm
