#pragma once

/// \file transition_counts.hpp
/// Lagged transition counting over discrete (state-assigned) trajectories,
/// plus strongly-connected-component analysis used to restrict the model to
/// its largest communicating subset (paper §3.2: "analysis was performed on
/// the largest connected subset of the Markovian transition matrix").

#include <cstddef>
#include <vector>

#include "msm/linalg.hpp"

namespace cop::msm {

/// A discrete trajectory: the microstate index of each stored snapshot, in
/// temporal order with a uniform snapshot spacing.
using DiscreteTrajectory = std::vector<int>;

/// Counts transitions i -> j separated by `lag` snapshots, using the
/// sliding-window convention (every snapshot starts a transition).
DenseMatrix countTransitions(const std::vector<DiscreteTrajectory>& trajs,
                             std::size_t numStates, std::size_t lag);

/// Tarjan strongly connected components of the directed graph with an edge
/// i -> j wherever counts(i, j) > 0. Returns the component id per state.
std::vector<int> stronglyConnectedComponents(const DenseMatrix& counts);

/// States in the largest SCC (ties broken by total counts), ascending.
std::vector<int> largestConnectedSet(const DenseMatrix& counts);

/// Restricts a count matrix to `states` (in their given order).
DenseMatrix restrictToStates(const DenseMatrix& counts,
                             const std::vector<int>& states);

} // namespace cop::msm
