#pragma once

/// \file transition_counts.hpp
/// Lagged transition counting over discrete (state-assigned) trajectories,
/// plus strongly-connected-component analysis used to restrict the model to
/// its largest communicating subset (paper §3.2: "analysis was performed on
/// the largest connected subset of the Markovian transition matrix").
///
/// Counts live in a sparse row structure: a K-state MSM touches only the
/// observed transitions (typically a few per state), so the dense K x K
/// matrix the original pipeline built is mostly zeros, and rebuilding it
/// from scratch each adaptive generation is O(K^2 + total trajectory
/// length). The sparse form supports suffix-incremental updates — only the
/// transitions introduced by newly appended snapshots are counted — and
/// SCC/restriction run directly on it. All counts are integer-valued sums,
/// so sparse, dense, incremental and threaded paths agree exactly.

#include <cstddef>
#include <utility>
#include <vector>

#include "msm/linalg.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::msm {

/// A discrete trajectory: the microstate index of each stored snapshot, in
/// temporal order with a uniform snapshot spacing.
using DiscreteTrajectory = std::vector<int>;

/// Sparse transition-count matrix: per-row (column, count) pairs sorted by
/// column. Rows with no observed outgoing transitions stay empty.
class SparseCounts {
public:
    using Entry = std::pair<int, double>;
    using Row = std::vector<Entry>;

    SparseCounts() = default;
    explicit SparseCounts(std::size_t numStates) : rows_(numStates) {}

    std::size_t numStates() const { return rows_.size(); }

    /// Grows the state space (never shrinks; existing counts keep).
    void resize(std::size_t numStates);

    /// Adds `w` to entry (i, j), creating it if absent.
    void add(int i, int j, double w = 1.0);

    /// Count at (i, j); 0 for entries never added.
    double at(int i, int j) const;

    const Row& row(std::size_t i) const { return rows_[i]; }
    double rowSum(std::size_t i) const;
    std::size_t nonZeros() const;

    /// Adds every entry of `other` (state spaces must match).
    void addAll(const SparseCounts& other);

    DenseMatrix toDense() const;
    static SparseCounts fromDense(const DenseMatrix& m);

    bool operator==(const SparseCounts&) const = default;

private:
    std::vector<Row> rows_;
};

/// Counts transitions i -> j separated by `lag` snapshots, using the
/// sliding-window convention (every snapshot starts a transition).
DenseMatrix countTransitions(const std::vector<DiscreteTrajectory>& trajs,
                             std::size_t numStates, std::size_t lag);

/// Sparse equivalent of countTransitions; with a pool, trajectories are
/// counted in chunks whose partial matrices merge in chunk order (integer
/// sums, so the result is exact and identical to the serial count).
SparseCounts countTransitionsSparse(
    const std::vector<DiscreteTrajectory>& trajs, std::size_t numStates,
    std::size_t lag, ThreadPool* pool = nullptr);

/// Adds only the transitions introduced by growing `traj` from `oldLength`
/// snapshots to its current length: every (t, t+lag) window whose end lands
/// in the new suffix. Counting each appended suffix exactly once reproduces
/// the from-scratch count.
void addSuffixTransitions(SparseCounts& counts,
                          const DiscreteTrajectory& traj, std::size_t lag,
                          std::size_t oldLength);

/// One pass over the trajectories counting every lag in `lags` at once —
/// the implied-timescale sweep shares a single traversal instead of
/// recounting per lag. Result order matches `lags`.
std::vector<SparseCounts> countTransitionsMultiLag(
    const std::vector<DiscreteTrajectory>& trajs, std::size_t numStates,
    const std::vector<std::size_t>& lags);

/// Tarjan strongly connected components of the directed graph with an edge
/// i -> j wherever counts(i, j) > 0. Returns the component id per state.
std::vector<int> stronglyConnectedComponents(const DenseMatrix& counts);
std::vector<int> stronglyConnectedComponents(const SparseCounts& counts);

/// States in the largest SCC (ties broken by total counts), ascending.
std::vector<int> largestConnectedSet(const DenseMatrix& counts);
std::vector<int> largestConnectedSet(const SparseCounts& counts);

/// Restricts a count matrix to `states` (in their given order). The
/// restricted matrix is the estimators' working set (at most the cluster
/// count on a side), so it stays dense.
DenseMatrix restrictToStates(const DenseMatrix& counts,
                             const std::vector<int>& states);
DenseMatrix restrictToStates(const SparseCounts& counts,
                             const std::vector<int>& states);

} // namespace cop::msm
