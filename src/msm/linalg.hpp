#pragma once

/// \file linalg.hpp
/// Small dense linear algebra for MSM analysis: row-major matrix, Gaussian
/// elimination, and a symmetric Jacobi eigensolver. MSMs in this repo use
/// a few hundred microstates, where straightforward dense O(n^3) methods
/// are both fast enough and dependency-free.

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace cop::msm {

class DenseMatrix {
public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    static DenseMatrix identity(std::size_t n) {
        DenseMatrix m(n, n);
        for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
        return m;
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t i, std::size_t j) {
        return data_[i * cols_ + j];
    }
    double operator()(std::size_t i, std::size_t j) const {
        return data_[i * cols_ + j];
    }

    const std::vector<double>& data() const { return data_; }

    /// Matrix-vector product y = A x.
    std::vector<double> multiply(const std::vector<double>& x) const;

    /// Row-vector product y = x A (the natural direction for propagating
    /// probability distributions through a row-stochastic matrix).
    std::vector<double> leftMultiply(const std::vector<double>& x) const;

    DenseMatrix multiply(const DenseMatrix& other) const;

    DenseMatrix transposed() const;

    /// Max |A_ij - B_ij|.
    double maxAbsDiff(const DenseMatrix& other) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting. Throws
/// NumericalError on (near-)singular systems.
std::vector<double> solveLinearSystem(DenseMatrix a, std::vector<double> b);

/// Eigen decomposition of a symmetric matrix by cyclic Jacobi rotation.
/// Returns eigenvalues sorted descending with matching eigenvectors
/// (columns of `vectors`).
struct SymmetricEigen {
    std::vector<double> values;
    DenseMatrix vectors; ///< vectors(i, k) = component i of eigenvector k
};
SymmetricEigen symmetricEigen(DenseMatrix a, int maxSweeps = 100);

} // namespace cop::msm
