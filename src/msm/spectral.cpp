#include "msm/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace cop::msm {

DenseMatrix slowEigenvectors(const MarkovStateModel& model,
                             std::size_t count) {
    const std::size_t n = model.numStates();
    COP_REQUIRE(count >= 1, "need at least one eigenvector");
    count = std::min(count, n > 1 ? n - 1 : 1);
    const auto& pi = model.stationaryDistribution();

    // Symmetrize S = D^{1/2} T D^{-1/2}; right eigenvectors of T are
    // psi = D^{-1/2} v for eigenvectors v of S.
    DenseMatrix s(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            s(i, j) = std::sqrt(std::max(pi[i], 1e-300)) *
                      model.transitionMatrix()(i, j) /
                      std::sqrt(std::max(pi[j], 1e-300));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double v = 0.5 * (s(i, j) + s(j, i));
            s(i, j) = s(j, i) = v;
        }
    const auto eig = symmetricEigen(std::move(s));

    DenseMatrix psi(n, count);
    for (std::size_t k = 0; k < count; ++k)
        for (std::size_t i = 0; i < n; ++i)
            psi(i, k) = eig.vectors(i, k + 1) /
                        std::sqrt(std::max(pi[i], 1e-300));
    return psi;
}

namespace {

/// Plain k-means in R^d with deterministic k-means++-style seeding.
std::vector<int> kMeansRows(const DenseMatrix& points, std::size_t k,
                            std::uint64_t seed) {
    const std::size_t n = points.rows();
    const std::size_t d = points.cols();
    COP_REQUIRE(k >= 1 && k <= n, "bad macrostate count");

    auto dist2 = [&](std::size_t i, const std::vector<double>& c) {
        double s = 0.0;
        for (std::size_t x = 0; x < d; ++x) {
            const double diff = points(i, x) - c[x];
            s += diff * diff;
        }
        return s;
    };

    // Seeding: farthest-point (deterministic given the RNG's first pick).
    Rng rng(seed);
    std::vector<std::vector<double>> centers;
    std::size_t first = rng.uniformInt(n);
    centers.push_back(std::vector<double>(d));
    for (std::size_t x = 0; x < d; ++x) centers[0][x] = points(first, x);
    while (centers.size() < k) {
        std::size_t farthest = 0;
        double best = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
            double nearest = std::numeric_limits<double>::max();
            for (const auto& c : centers)
                nearest = std::min(nearest, dist2(i, c));
            if (nearest > best) {
                best = nearest;
                farthest = i;
            }
        }
        centers.push_back(std::vector<double>(d));
        for (std::size_t x = 0; x < d; ++x)
            centers.back()[x] = points(farthest, x);
    }

    std::vector<int> assign(n, 0);
    for (int iter = 0; iter < 100; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            int bestC = assign[i];
            double bestD = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < centers.size(); ++c) {
                const double dd = dist2(i, centers[c]);
                if (dd < bestD) {
                    bestD = dd;
                    bestC = int(c);
                }
            }
            if (bestC != assign[i]) {
                assign[i] = bestC;
                changed = true;
            }
        }
        if (!changed && iter > 0) break;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            std::vector<double> sum(d, 0.0);
            std::size_t cnt = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (assign[i] != int(c)) continue;
                ++cnt;
                for (std::size_t x = 0; x < d; ++x) sum[x] += points(i, x);
            }
            if (cnt > 0)
                for (std::size_t x = 0; x < d; ++x)
                    centers[c][x] = sum[x] / double(cnt);
        }
    }
    return assign;
}

} // namespace

MacrostateResult identifyMacrostates(const MarkovStateModel& model,
                                     std::size_t numMacrostates,
                                     std::uint64_t seed) {
    const std::size_t n = model.numStates();
    COP_REQUIRE(numMacrostates >= 2, "need at least two macrostates");
    numMacrostates = std::min(numMacrostates, n);

    MacrostateResult result;
    result.numMacrostates = numMacrostates;
    if (numMacrostates == n) {
        result.assignment.resize(n);
        for (std::size_t i = 0; i < n; ++i) result.assignment[i] = int(i);
    } else {
        const auto psi = slowEigenvectors(model, numMacrostates - 1);
        result.assignment = kMeansRows(psi, numMacrostates, seed);
    }

    const auto& pi = model.stationaryDistribution();
    result.populations.assign(numMacrostates, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        result.populations[std::size_t(result.assignment[i])] += pi[i];

    // Metastability: average over macrostates of the within-set
    // conditional self-transition probability.
    double meta = 0.0;
    std::size_t counted = 0;
    for (std::size_t m = 0; m < numMacrostates; ++m) {
        if (result.populations[m] <= 0.0) continue;
        double stay = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (result.assignment[i] != int(m)) continue;
            for (std::size_t j = 0; j < n; ++j)
                if (result.assignment[j] == int(m))
                    stay += pi[i] * model.transitionMatrix()(i, j);
        }
        meta += stay / result.populations[m];
        ++counted;
    }
    result.metastability = counted ? meta / double(counted) : 0.0;
    return result;
}

TptResult transitionPathTheory(const MarkovStateModel& model,
                               const std::vector<int>& sourceA,
                               const std::vector<int>& sinkB) {
    const std::size_t n = model.numStates();
    TptResult tpt;
    tpt.forwardCommittor = model.committor(sourceA, sinkB);
    tpt.backwardCommittor.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        tpt.backwardCommittor[i] = 1.0 - tpt.forwardCommittor[i];

    const auto& pi = model.stationaryDistribution();
    const auto& t = model.transitionMatrix();
    const auto& qp = tpt.forwardCommittor;
    const auto& qm = tpt.backwardCommittor;

    // Gross reactive flux f_ij = pi_i q-_i T_ij q+_j (i != j), then the
    // net flux f+_ij = max(0, f_ij - f_ji).
    DenseMatrix gross(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (i != j) gross(i, j) = pi[i] * qm[i] * t(i, j) * qp[j];
    tpt.netFlux = DenseMatrix(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            tpt.netFlux(i, j) = std::max(0.0, gross(i, j) - gross(j, i));

    // Total flux out of A.
    std::vector<bool> inA(n, false);
    for (int a : sourceA) inA[std::size_t(a)] = true;
    for (int a : sourceA)
        for (std::size_t j = 0; j < n; ++j)
            if (!inA[j]) tpt.totalFlux += tpt.netFlux(std::size_t(a), j);

    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) denom += pi[i] * qm[i];
    tpt.rate = denom > 0.0 ? tpt.totalFlux / denom : 0.0;
    tpt.mfpt = tpt.rate > 0.0 ? 1.0 / tpt.rate
                              : std::numeric_limits<double>::infinity();
    return tpt;
}

DenseMatrix sampleTransitionMatrix(const DenseMatrix& counts, Rng& rng,
                                   double prior) {
    const std::size_t n = counts.rows();
    COP_REQUIRE(counts.cols() == n, "counts must be square");
    COP_REQUIRE(prior > 0.0, "prior must be positive");
    DenseMatrix t(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        // Dirichlet via normalized Gamma draws; alpha_j = c_ij + prior for
        // observed transitions, 0 (excluded) otherwise.
        double rowSum = 0.0;
        std::vector<double> g(n, 0.0);
        bool any = false;
        for (std::size_t j = 0; j < n; ++j) {
            if (counts(i, j) <= 0.0 && i != j) continue;
            const double alpha = counts(i, j) + prior;
            // Marsaglia-Tsang for alpha >= 1; boost for alpha < 1.
            double a = alpha < 1.0 ? alpha + 1.0 : alpha;
            const double d = a - 1.0 / 3.0;
            const double c = 1.0 / std::sqrt(9.0 * d);
            double sample = 0.0;
            for (;;) {
                const double x = rng.gaussian();
                double v = 1.0 + c * x;
                if (v <= 0.0) continue;
                v = v * v * v;
                const double u = rng.uniform();
                if (u < 1.0 - 0.0331 * x * x * x * x ||
                    std::log(std::max(u, 1e-300)) <
                        0.5 * x * x + d * (1.0 - v + std::log(v))) {
                    sample = d * v;
                    break;
                }
            }
            if (alpha < 1.0)
                sample *= std::pow(rng.uniform(), 1.0 / alpha);
            g[j] = sample;
            rowSum += sample;
            any = true;
        }
        if (!any || rowSum <= 0.0) {
            t(i, i) = 1.0;
            continue;
        }
        for (std::size_t j = 0; j < n; ++j) t(i, j) = g[j] / rowSum;
    }
    return t;
}

UncertaintyResult transitionMatrixUncertainty(
    const DenseMatrix& counts,
    const std::function<double(const DenseMatrix&)>& observable,
    std::size_t nSamples, Rng& rng, double prior) {
    COP_REQUIRE(nSamples >= 2, "need at least two samples");
    UncertaintyResult out;
    out.samples.reserve(nSamples);
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t s = 0; s < nSamples; ++s) {
        const auto t = sampleTransitionMatrix(counts, rng, prior);
        const double v = observable(t);
        out.samples.push_back(v);
        sum += v;
        sum2 += v * v;
    }
    out.mean = sum / double(nSamples);
    out.stddev = std::sqrt(
        std::max(0.0, sum2 / double(nSamples) - out.mean * out.mean));
    return out;
}

std::vector<double> stationaryOf(const DenseMatrix& transition,
                                 int maxIterations, double tolerance) {
    const std::size_t n = transition.rows();
    COP_REQUIRE(transition.cols() == n, "matrix must be square");
    std::vector<double> p(n, 1.0 / double(n));
    for (int iter = 0; iter < maxIterations; ++iter) {
        auto next = transition.leftMultiply(p);
        double sum = 0.0;
        for (double v : next) sum += v;
        for (double& v : next) v /= sum;
        double delta = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            delta = std::max(delta, std::abs(next[i] - p[i]));
        p = std::move(next);
        if (delta < tolerance) break;
    }
    return p;
}

} // namespace cop::msm
