#pragma once

/// \file spectral.hpp
/// Higher-level MSM analyses built on the spectral structure of the
/// transition matrix:
///
///  - macrostate identification (spectral/PCCA-style clustering of
///    microstates in the space of the slow right eigenvectors) — the
///    paper's "division of the high-dimensional free energy landscape into
///    metastable states";
///  - transition path theory (reactive flux and folding rates between a
///    source and sink set), the quantitative form of the paper's "folding
///    rates and mechanism";
///  - Bayesian uncertainty quantification by sampling transition matrices
///    from the per-row Dirichlet posterior of the counts — the statistical
///    basis of adaptive sampling's "uncertainty in the transitions".

#include <cstdint>
#include <functional>
#include <vector>

#include "msm/markov_model.hpp"
#include "util/random.hpp"

namespace cop::msm {

/// Right eigenvectors psi_2..psi_{m} of the transition matrix (computed
/// through the pi-symmetrized form), one column per eigenvector, rows =
/// active states. Column k corresponds to eigenvalue lambda_{k+1}.
DenseMatrix slowEigenvectors(const MarkovStateModel& model,
                             std::size_t count);

struct MacrostateResult {
    /// Macrostate index per active microstate.
    std::vector<int> assignment;
    std::size_t numMacrostates = 0;
    /// Aggregate stationary probability per macrostate.
    std::vector<double> populations;
    /// Metastability: sum of within-macrostate self-transition
    /// probability, averaged over macrostates (1 = perfectly metastable).
    double metastability = 0.0;
};

/// Groups microstates into `numMacrostates` metastable sets by k-means in
/// the slow-eigenvector embedding (spectral clustering; PCCA-like).
/// Deterministic in `seed`.
MacrostateResult identifyMacrostates(const MarkovStateModel& model,
                                     std::size_t numMacrostates,
                                     std::uint64_t seed = 0);

struct TptResult {
    std::vector<double> forwardCommittor;  ///< q+ per active state
    std::vector<double> backwardCommittor; ///< q- (reversible: 1 - q+)
    /// Net reactive flux matrix f+_ij (non-negative, antisymmetrized).
    DenseMatrix netFlux;
    /// Total reactive A->B flux (probability per lag time).
    double totalFlux = 0.0;
    /// A->B rate constant: flux / (sum_i pi_i q-_i), per lag time.
    double rate = 0.0;
    /// Expected A->B transit time in lag units (1 / rate).
    double mfpt = 0.0;
};

/// Transition path theory between `sourceA` and `sinkB` (active indices).
/// Assumes the model satisfies detailed balance (use ReversibleMle or
/// Symmetrized estimators).
TptResult transitionPathTheory(const MarkovStateModel& model,
                               const std::vector<int>& sourceA,
                               const std::vector<int>& sinkB);

/// One posterior sample of a transition matrix: each row drawn from
/// Dirichlet(counts_row + prior). Rows with no counts stay identity.
DenseMatrix sampleTransitionMatrix(const DenseMatrix& counts, Rng& rng,
                                   double prior = 0.5);

struct UncertaintyResult {
    double mean = 0.0;
    double stddev = 0.0;
    std::vector<double> samples;
};

/// Posterior uncertainty of a scalar observable of the transition matrix,
/// estimated over `nSamples` Dirichlet draws from the count posterior.
UncertaintyResult transitionMatrixUncertainty(
    const DenseMatrix& counts,
    const std::function<double(const DenseMatrix&)>& observable,
    std::size_t nSamples, Rng& rng, double prior = 0.5);

/// Stationary distribution of an arbitrary row-stochastic matrix by power
/// iteration (free function counterpart of the model method).
std::vector<double> stationaryOf(const DenseMatrix& transition,
                                 int maxIterations = 100000,
                                 double tolerance = 1e-14);

} // namespace cop::msm
