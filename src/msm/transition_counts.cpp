#include "msm/transition_counts.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cop::msm {

DenseMatrix countTransitions(const std::vector<DiscreteTrajectory>& trajs,
                             std::size_t numStates, std::size_t lag) {
    COP_REQUIRE(lag >= 1, "lag must be >= 1");
    DenseMatrix counts(numStates, numStates);
    for (const auto& traj : trajs) {
        for (std::size_t t = 0; t + lag < traj.size(); ++t) {
            const int from = traj[t];
            const int to = traj[t + lag];
            COP_REQUIRE(from >= 0 && std::size_t(from) < numStates &&
                            to >= 0 && std::size_t(to) < numStates,
                        "state index out of range");
            counts(std::size_t(from), std::size_t(to)) += 1.0;
        }
    }
    return counts;
}

namespace {

/// Iterative Tarjan SCC (explicit stack to avoid recursion-depth limits).
class TarjanScc {
public:
    explicit TarjanScc(const DenseMatrix& counts)
        : n_(counts.rows()), counts_(counts) {
        index_.assign(n_, -1);
        lowlink_.assign(n_, 0);
        onStack_.assign(n_, false);
        component_.assign(n_, -1);
    }

    std::vector<int> run() {
        for (std::size_t v = 0; v < n_; ++v)
            if (index_[v] < 0) strongConnect(v);
        return component_;
    }

    int numComponents() const { return nextComponent_; }

private:
    struct Frame {
        std::size_t v;
        std::size_t nextChild;
    };

    void strongConnect(std::size_t root) {
        std::vector<Frame> callStack{{root, 0}};
        while (!callStack.empty()) {
            Frame& f = callStack.back();
            const std::size_t v = f.v;
            if (f.nextChild == 0) {
                index_[v] = lowlink_[v] = counter_++;
                stack_.push_back(v);
                onStack_[v] = true;
            }
            bool descended = false;
            while (f.nextChild < n_) {
                const std::size_t w = f.nextChild++;
                if (counts_(v, w) <= 0.0 || v == w) continue;
                if (index_[w] < 0) {
                    callStack.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack_[w])
                    lowlink_[v] = std::min(lowlink_[v], index_[w]);
            }
            if (descended) continue;
            if (lowlink_[v] == index_[v]) {
                for (;;) {
                    const std::size_t w = stack_.back();
                    stack_.pop_back();
                    onStack_[w] = false;
                    component_[w] = nextComponent_;
                    if (w == v) break;
                }
                ++nextComponent_;
            }
            callStack.pop_back();
            if (!callStack.empty()) {
                const std::size_t parent = callStack.back().v;
                lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
            }
        }
    }

    std::size_t n_;
    const DenseMatrix& counts_;
    std::vector<int> index_;
    std::vector<int> lowlink_;
    std::vector<bool> onStack_;
    std::vector<int> component_;
    std::vector<std::size_t> stack_;
    int counter_ = 0;
    int nextComponent_ = 0;
};

} // namespace

std::vector<int> stronglyConnectedComponents(const DenseMatrix& counts) {
    COP_REQUIRE(counts.rows() == counts.cols(), "counts must be square");
    TarjanScc scc(counts);
    return scc.run();
}

std::vector<int> largestConnectedSet(const DenseMatrix& counts) {
    const auto comp = stronglyConnectedComponents(counts);
    const std::size_t n = counts.rows();
    int nComp = 0;
    for (int c : comp) nComp = std::max(nComp, c + 1);

    // Score components by (member count, total transition counts).
    std::vector<std::size_t> sizes(std::size_t(nComp), 0);
    std::vector<double> weight(std::size_t(nComp), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        ++sizes[std::size_t(comp[i])];
        for (std::size_t j = 0; j < n; ++j)
            weight[std::size_t(comp[i])] += counts(i, j);
    }
    int best = 0;
    for (int c = 1; c < nComp; ++c) {
        if (sizes[std::size_t(c)] > sizes[std::size_t(best)] ||
            (sizes[std::size_t(c)] == sizes[std::size_t(best)] &&
             weight[std::size_t(c)] > weight[std::size_t(best)]))
            best = c;
    }
    std::vector<int> states;
    for (std::size_t i = 0; i < n; ++i)
        if (comp[i] == best) states.push_back(int(i));
    return states;
}

DenseMatrix restrictToStates(const DenseMatrix& counts,
                             const std::vector<int>& states) {
    DenseMatrix out(states.size(), states.size());
    for (std::size_t a = 0; a < states.size(); ++a)
        for (std::size_t b = 0; b < states.size(); ++b)
            out(a, b) = counts(std::size_t(states[a]), std::size_t(states[b]));
    return out;
}

} // namespace cop::msm
