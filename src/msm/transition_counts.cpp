#include "msm/transition_counts.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cop::msm {

void SparseCounts::resize(std::size_t numStates) {
    COP_REQUIRE(numStates >= rows_.size(), "SparseCounts cannot shrink");
    rows_.resize(numStates);
}

void SparseCounts::add(int i, int j, double w) {
    COP_REQUIRE(i >= 0 && std::size_t(i) < rows_.size() && j >= 0 &&
                    std::size_t(j) < rows_.size(),
                "state index out of range");
    Row& row = rows_[std::size_t(i)];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, int col) { return e.first < col; });
    if (it != row.end() && it->first == j)
        it->second += w;
    else
        row.insert(it, {j, w});
}

double SparseCounts::at(int i, int j) const {
    COP_REQUIRE(i >= 0 && std::size_t(i) < rows_.size() && j >= 0 &&
                    std::size_t(j) < rows_.size(),
                "state index out of range");
    const Row& row = rows_[std::size_t(i)];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, int col) { return e.first < col; });
    return (it != row.end() && it->first == j) ? it->second : 0.0;
}

double SparseCounts::rowSum(std::size_t i) const {
    double s = 0.0;
    for (const auto& [j, w] : rows_[i]) s += w;
    return s;
}

std::size_t SparseCounts::nonZeros() const {
    std::size_t n = 0;
    for (const auto& row : rows_) n += row.size();
    return n;
}

void SparseCounts::addAll(const SparseCounts& other) {
    COP_REQUIRE(other.numStates() == numStates(),
                "SparseCounts state-space mismatch");
    for (std::size_t i = 0; i < other.rows_.size(); ++i)
        for (const auto& [j, w] : other.rows_[i]) add(int(i), j, w);
}

DenseMatrix SparseCounts::toDense() const {
    DenseMatrix m(rows_.size(), rows_.size());
    for (std::size_t i = 0; i < rows_.size(); ++i)
        for (const auto& [j, w] : rows_[i]) m(i, std::size_t(j)) = w;
    return m;
}

SparseCounts SparseCounts::fromDense(const DenseMatrix& m) {
    COP_REQUIRE(m.rows() == m.cols(), "counts must be square");
    SparseCounts out(m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            if (m(i, j) != 0.0) out.rows_[i].push_back({int(j), m(i, j)});
    return out;
}

DenseMatrix countTransitions(const std::vector<DiscreteTrajectory>& trajs,
                             std::size_t numStates, std::size_t lag) {
    COP_REQUIRE(lag >= 1, "lag must be >= 1");
    DenseMatrix counts(numStates, numStates);
    for (const auto& traj : trajs) {
        for (std::size_t t = 0; t + lag < traj.size(); ++t) {
            const int from = traj[t];
            const int to = traj[t + lag];
            COP_REQUIRE(from >= 0 && std::size_t(from) < numStates &&
                            to >= 0 && std::size_t(to) < numStates,
                        "state index out of range");
            counts(std::size_t(from), std::size_t(to)) += 1.0;
        }
    }
    return counts;
}

SparseCounts countTransitionsSparse(
    const std::vector<DiscreteTrajectory>& trajs, std::size_t numStates,
    std::size_t lag, ThreadPool* pool) {
    COP_REQUIRE(lag >= 1, "lag must be >= 1");
    auto countRange = [&](std::size_t lo, std::size_t hi) {
        SparseCounts partial(numStates);
        for (std::size_t t = lo; t < hi; ++t)
            addSuffixTransitions(partial, trajs[t], lag, 0);
        return partial;
    };
    if (pool != nullptr && pool->size() > 1 && trajs.size() >= 4) {
        // Partial matrices merge in chunk order; every cell is an integer
        // sum, so the merged result equals the serial count exactly.
        return pool->parallelReduceChunked(
            std::size_t{0}, trajs.size(), SparseCounts(numStates),
            countRange, [](SparseCounts acc, const SparseCounts& p) {
                acc.addAll(p);
                return acc;
            });
    }
    return countRange(0, trajs.size());
}

void addSuffixTransitions(SparseCounts& counts,
                          const DiscreteTrajectory& traj, std::size_t lag,
                          std::size_t oldLength) {
    COP_REQUIRE(lag >= 1, "lag must be >= 1");
    COP_REQUIRE(oldLength <= traj.size(), "suffix start past end");
    // Windows already counted end before oldLength; new ones end at
    // [oldLength, size), i.e. start at [oldLength - lag, size - lag).
    const std::size_t start = oldLength > lag ? oldLength - lag : 0;
    for (std::size_t t = start; t + lag < traj.size(); ++t)
        counts.add(traj[t], traj[t + lag]);
}

std::vector<SparseCounts> countTransitionsMultiLag(
    const std::vector<DiscreteTrajectory>& trajs, std::size_t numStates,
    const std::vector<std::size_t>& lags) {
    std::vector<SparseCounts> out(lags.size(), SparseCounts(numStates));
    for (const auto& traj : trajs) {
        for (std::size_t t = 0; t < traj.size(); ++t) {
            for (std::size_t l = 0; l < lags.size(); ++l) {
                COP_REQUIRE(lags[l] >= 1, "lag must be >= 1");
                if (t + lags[l] < traj.size())
                    out[l].add(traj[t], traj[t + lags[l]]);
            }
        }
    }
    return out;
}

namespace {

/// Iterative Tarjan SCC over ascending adjacency lists (explicit stack to
/// avoid recursion-depth limits). Both matrix forms lower to the same
/// adjacency representation, so component ids agree between them.
class TarjanScc {
public:
    explicit TarjanScc(std::vector<std::vector<int>> adjacency)
        : n_(adjacency.size()), adj_(std::move(adjacency)) {
        index_.assign(n_, -1);
        lowlink_.assign(n_, 0);
        onStack_.assign(n_, false);
        component_.assign(n_, -1);
    }

    std::vector<int> run() {
        for (std::size_t v = 0; v < n_; ++v)
            if (index_[v] < 0) strongConnect(v);
        return component_;
    }

private:
    struct Frame {
        std::size_t v;
        std::size_t nextChild;
    };

    void strongConnect(std::size_t root) {
        std::vector<Frame> callStack{{root, 0}};
        while (!callStack.empty()) {
            Frame& f = callStack.back();
            const std::size_t v = f.v;
            if (f.nextChild == 0) {
                index_[v] = lowlink_[v] = counter_++;
                stack_.push_back(v);
                onStack_[v] = true;
            }
            bool descended = false;
            while (f.nextChild < adj_[v].size()) {
                const std::size_t w = std::size_t(adj_[v][f.nextChild++]);
                if (index_[w] < 0) {
                    callStack.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack_[w])
                    lowlink_[v] = std::min(lowlink_[v], index_[w]);
            }
            if (descended) continue;
            if (lowlink_[v] == index_[v]) {
                for (;;) {
                    const std::size_t w = stack_.back();
                    stack_.pop_back();
                    onStack_[w] = false;
                    component_[w] = nextComponent_;
                    if (w == v) break;
                }
                ++nextComponent_;
            }
            callStack.pop_back();
            if (!callStack.empty()) {
                const std::size_t parent = callStack.back().v;
                lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
            }
        }
    }

    std::size_t n_;
    std::vector<std::vector<int>> adj_;
    std::vector<int> index_;
    std::vector<int> lowlink_;
    std::vector<bool> onStack_;
    std::vector<int> component_;
    std::vector<std::size_t> stack_;
    int counter_ = 0;
    int nextComponent_ = 0;
};

std::vector<std::vector<int>> adjacencyOf(const DenseMatrix& counts) {
    std::vector<std::vector<int>> adj(counts.rows());
    for (std::size_t v = 0; v < counts.rows(); ++v)
        for (std::size_t w = 0; w < counts.cols(); ++w)
            if (counts(v, w) > 0.0 && v != w) adj[v].push_back(int(w));
    return adj;
}

std::vector<std::vector<int>> adjacencyOf(const SparseCounts& counts) {
    std::vector<std::vector<int>> adj(counts.numStates());
    for (std::size_t v = 0; v < counts.numStates(); ++v)
        for (const auto& [w, c] : counts.row(v))
            if (c > 0.0 && std::size_t(w) != v) adj[v].push_back(w);
    return adj;
}

/// Shared tail of largestConnectedSet: pick the component with the most
/// members (ties by total outgoing counts) and list its states ascending.
template <typename RowWeight>
std::vector<int> largestComponent(const std::vector<int>& comp,
                                  std::size_t n, RowWeight&& rowWeight) {
    int nComp = 0;
    for (int c : comp) nComp = std::max(nComp, c + 1);

    std::vector<std::size_t> sizes(std::size_t(nComp), 0);
    std::vector<double> weight(std::size_t(nComp), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        ++sizes[std::size_t(comp[i])];
        weight[std::size_t(comp[i])] += rowWeight(i);
    }
    int best = 0;
    for (int c = 1; c < nComp; ++c) {
        if (sizes[std::size_t(c)] > sizes[std::size_t(best)] ||
            (sizes[std::size_t(c)] == sizes[std::size_t(best)] &&
             weight[std::size_t(c)] > weight[std::size_t(best)]))
            best = c;
    }
    std::vector<int> states;
    for (std::size_t i = 0; i < n; ++i)
        if (comp[i] == best) states.push_back(int(i));
    return states;
}

} // namespace

std::vector<int> stronglyConnectedComponents(const DenseMatrix& counts) {
    COP_REQUIRE(counts.rows() == counts.cols(), "counts must be square");
    return TarjanScc(adjacencyOf(counts)).run();
}

std::vector<int> stronglyConnectedComponents(const SparseCounts& counts) {
    return TarjanScc(adjacencyOf(counts)).run();
}

std::vector<int> largestConnectedSet(const DenseMatrix& counts) {
    const auto comp = stronglyConnectedComponents(counts);
    const std::size_t n = counts.rows();
    return largestComponent(comp, n, [&](std::size_t i) {
        double s = 0.0;
        for (std::size_t j = 0; j < n; ++j) s += counts(i, j);
        return s;
    });
}

std::vector<int> largestConnectedSet(const SparseCounts& counts) {
    const auto comp = stronglyConnectedComponents(counts);
    return largestComponent(comp, counts.numStates(),
                            [&](std::size_t i) { return counts.rowSum(i); });
}

DenseMatrix restrictToStates(const DenseMatrix& counts,
                             const std::vector<int>& states) {
    DenseMatrix out(states.size(), states.size());
    for (std::size_t a = 0; a < states.size(); ++a)
        for (std::size_t b = 0; b < states.size(); ++b)
            out(a, b) = counts(std::size_t(states[a]), std::size_t(states[b]));
    return out;
}

DenseMatrix restrictToStates(const SparseCounts& counts,
                             const std::vector<int>& states) {
    // Scatter the kept rows through an old-state -> new-index map; touches
    // only the nonzeros instead of the |states|^2 dense probe.
    std::vector<int> toNew(counts.numStates(), -1);
    for (std::size_t a = 0; a < states.size(); ++a)
        toNew[std::size_t(states[a])] = int(a);
    DenseMatrix out(states.size(), states.size());
    for (std::size_t a = 0; a < states.size(); ++a)
        for (const auto& [j, w] : counts.row(std::size_t(states[a]))) {
            const int b = toNew[std::size_t(j)];
            if (b >= 0) out(a, std::size_t(b)) = w;
        }
    return out;
}

} // namespace cop::msm
