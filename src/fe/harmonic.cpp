#include "fe/harmonic.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cop::fe {

double harmonicDeltaF(const HarmonicState& s0, const HarmonicState& s1,
                      double beta) {
    COP_REQUIRE(s0.k > 0.0 && s1.k > 0.0, "spring constants must be positive");
    COP_REQUIRE(beta > 0.0, "beta must be positive");
    // F = -(1/beta) ln sqrt(2 pi / (beta k)); centers cancel.
    return 0.5 / beta * std::log(s1.k / s0.k);
}

std::vector<double> harmonicWorkSamples(const HarmonicState& sampled,
                                        const HarmonicState& target,
                                        std::size_t n, double beta, Rng& rng) {
    COP_REQUIRE(n > 0, "need at least one sample");
    COP_REQUIRE(sampled.k > 0.0 && beta > 0.0, "invalid parameters");
    const double sigma = 1.0 / std::sqrt(beta * sampled.k);
    std::vector<double> work;
    work.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.gaussian(sampled.x0, sigma);
        work.push_back(target.energy(x) - sampled.energy(x));
    }
    return work;
}

std::vector<HarmonicState> harmonicLambdaChain(const HarmonicState& first,
                                               const HarmonicState& last,
                                               std::size_t nWindows) {
    COP_REQUIRE(nWindows >= 1, "need at least one window");
    std::vector<HarmonicState> states;
    states.reserve(nWindows + 1);
    for (std::size_t w = 0; w <= nWindows; ++w) {
        const double lambda = double(w) / double(nWindows);
        states.push_back(HarmonicState{
            first.k + lambda * (last.k - first.k),
            first.x0 + lambda * (last.x0 - first.x0)});
    }
    return states;
}

} // namespace cop::fe
