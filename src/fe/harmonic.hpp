#pragma once

/// \file harmonic.hpp
/// Analytic harmonic test system for the free-energy module: two 1D
/// harmonic potentials U_s(x) = 0.5 k_s (x - x0_s)^2. The exact free-energy
/// difference is deltaF = (1/(2 beta)) ln(k1/k0), independent of the
/// centers. Samplers draw exact Boltzmann configurations and evaluate work
/// values, so estimator tests have no MD noise floor.

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace cop::fe {

struct HarmonicState {
    double k = 1.0;  ///< spring constant
    double x0 = 0.0; ///< center

    double energy(double x) const { return 0.5 * k * (x - x0) * (x - x0); }
};

/// Exact deltaF = F1 - F0 at inverse temperature beta.
double harmonicDeltaF(const HarmonicState& s0, const HarmonicState& s1,
                      double beta);

/// Draws `n` exact Boltzmann samples in `sampled` and returns the work
/// values U_target(x) - U_sampled(x).
std::vector<double> harmonicWorkSamples(const HarmonicState& sampled,
                                        const HarmonicState& target,
                                        std::size_t n, double beta, Rng& rng);

/// A chain of `nWindows+1` states interpolating linearly in both k and x0
/// between `first` and `last`.
std::vector<HarmonicState> harmonicLambdaChain(const HarmonicState& first,
                                               const HarmonicState& last,
                                               std::size_t nWindows);

} // namespace cop::fe
