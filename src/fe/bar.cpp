#include "fe/bar.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cop::fe {

namespace {

double logistic(double x) { return 1.0 / (1.0 + std::exp(x)); }

/// Log-sum-exp of -beta*w over samples, stable.
double logMeanExp(const std::vector<double>& w, double beta) {
    double m = -beta * w[0];
    for (double x : w) m = std::max(m, -beta * x);
    double s = 0.0;
    for (double x : w) s += std::exp(-beta * x - m);
    return m + std::log(s / double(w.size()));
}

} // namespace

double exponentialAveraging(const std::vector<double>& work, double beta) {
    COP_REQUIRE(!work.empty(), "no work samples");
    COP_REQUIRE(beta > 0.0, "beta must be positive");
    return -logMeanExp(work, beta) / beta;
}

BarResult bar(const std::vector<double>& forwardWork,
              const std::vector<double>& reverseWork,
              const BarParams& params) {
    COP_REQUIRE(!forwardWork.empty() && !reverseWork.empty(),
                "BAR needs samples in both directions");
    COP_REQUIRE(params.beta > 0.0, "beta must be positive");
    const double beta = params.beta;
    const auto nF = double(forwardWork.size());
    const auto nR = double(reverseWork.size());
    const double m = std::log(nF / nR) / beta;

    // Initial guess from the two one-sided estimates: the forward FEP
    // gives F1-F0 directly; the reverse FEP (sampled in state 1) gives
    // F0-F1, so its sign flips.
    const double dfFwd = exponentialAveraging(forwardWork, beta);
    const double dfRev = -exponentialAveraging(reverseWork, beta);
    double df = 0.5 * (dfFwd + dfRev);

    BarResult result;
    // Self-consistent iteration on the BAR identity:
    //   sum_F f(beta (M + W_F - dF)) = sum_R f(beta (-M + W_R + dF))
    // where f is the Fermi function; the update below is the standard
    // logarithmic fixed point, which converges monotonically.
    for (int it = 0; it < params.maxIterations; ++it) {
        double sumF = 0.0;
        for (double w : forwardWork) sumF += logistic(beta * (m + w - df));
        double sumR = 0.0;
        for (double w : reverseWork) sumR += logistic(beta * (-m + w + df));
        // Guard against vanishing overlap.
        if (sumF <= 0.0 || sumR <= 0.0)
            throw NumericalError("BAR: no phase-space overlap");
        const double delta = std::log(sumR / sumF) / beta;
        df += delta;
        result.iterations = it + 1;
        if (std::abs(delta) < params.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.deltaF = df;

    // Bennett's asymptotic variance: with x = beta(M + W - dF) in the
    // forward set and the matching expression in the reverse set,
    // var = [ <f^2>/<f>^2 - 1 ]_F / nF + [ <f^2>/<f>^2 - 1 ]_R / nR
    // in units of 1/beta^2.
    // Forward term: f(beta(M + W_F - dF)); reverse term: f(beta(-M + W_R + dF)).
    double vF = 0.0, vR = 0.0;
    {
        double sf = 0.0, sf2 = 0.0;
        for (double w : forwardWork) {
            const double f = logistic(beta * (m + w - df));
            sf += f;
            sf2 += f * f;
        }
        const double mf = sf / nF, mf2 = sf2 / nF;
        if (mf > 0.0) vF = (mf2 / (mf * mf) - 1.0) / nF;
    }
    {
        double sf = 0.0, sf2 = 0.0;
        for (double w : reverseWork) {
            const double f = logistic(beta * (-m + w + df));
            sf += f;
            sf2 += f * f;
        }
        const double mf = sf / nR, mf2 = sf2 / nR;
        if (mf > 0.0) vR = (mf2 / (mf * mf) - 1.0) / nR;
    }
    result.standardError = std::sqrt(std::max(0.0, vF + vR)) / beta;
    return result;
}

LambdaChainResult barChain(
    const std::vector<std::vector<double>>& forwardWorkPerWindow,
    const std::vector<std::vector<double>>& reverseWorkPerWindow,
    const BarParams& params) {
    COP_REQUIRE(forwardWorkPerWindow.size() == reverseWorkPerWindow.size(),
                "window count mismatch");
    LambdaChainResult out;
    double var = 0.0;
    for (std::size_t w = 0; w < forwardWorkPerWindow.size(); ++w) {
        auto r = bar(forwardWorkPerWindow[w], reverseWorkPerWindow[w], params);
        out.totalDeltaF += r.deltaF;
        var += r.standardError * r.standardError;
        out.windows.push_back(std::move(r));
    }
    out.totalError = std::sqrt(var);
    return out;
}

} // namespace cop::fe
