#pragma once

/// \file mbar.hpp
/// Multistate Bennett Acceptance Ratio (MBAR, Shirts & Chodera 2008): the
/// generalization of the paper's BAR plugin to all lambda windows at once.
/// Given samples from K states and the reduced energy of every sample
/// evaluated in every state, MBAR solves self-consistently for all K free
/// energies, using every sample for every estimate — strictly more
/// statistically efficient than chaining pairwise BAR.

#include <cstddef>
#include <vector>

#include "fe/harmonic.hpp"
#include "util/random.hpp"

namespace cop::fe {

/// Input: reducedEnergies[n][l] = beta * U_l(x_n) for the n-th pooled
/// sample evaluated in state l; samplesPerState[k] = number of pooled
/// samples drawn from state k (samples are pooled state-major:
/// samplesPerState[0] samples from state 0 first, and so on).
struct MbarInput {
    std::vector<std::vector<double>> reducedEnergies;
    std::vector<std::size_t> samplesPerState;

    std::size_t numStates() const { return samplesPerState.size(); }
    std::size_t totalSamples() const { return reducedEnergies.size(); }
};

struct MbarResult {
    /// Dimensionless free energies f_k (units of kT), gauged to f_0 = 0.
    std::vector<double> freeEnergies;
    bool converged = false;
    int iterations = 0;
    /// Max |delta f| of the last iteration.
    double residual = 0.0;
};

struct MbarParams {
    double tolerance = 1e-10;
    int maxIterations = 2000;
};

/// Solves the MBAR self-consistency equations.
MbarResult mbar(const MbarInput& input, const MbarParams& params = {});

/// Builds an MBAR input for a chain of harmonic states by exact Boltzmann
/// sampling (deterministic given the RNG).
MbarInput harmonicMbarInput(const std::vector<HarmonicState>& states,
                            std::size_t samplesPerState, double beta,
                            Rng& rng);

} // namespace cop::fe
