#include "fe/mbar.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cop::fe {

MbarResult mbar(const MbarInput& input, const MbarParams& params) {
    const std::size_t k = input.numStates();
    const std::size_t n = input.totalSamples();
    COP_REQUIRE(k >= 2, "MBAR needs at least two states");
    COP_REQUIRE(n >= k, "MBAR needs samples");
    std::size_t expected = 0;
    for (auto c : input.samplesPerState) {
        COP_REQUIRE(c > 0, "every state needs samples");
        expected += c;
    }
    COP_REQUIRE(expected == n, "samplesPerState does not match samples");
    for (const auto& row : input.reducedEnergies)
        COP_REQUIRE(row.size() == k, "energy row size mismatch");

    std::vector<double> logN(k);
    for (std::size_t s = 0; s < k; ++s)
        logN[s] = std::log(double(input.samplesPerState[s]));

    std::vector<double> f(k, 0.0);
    MbarResult result;

    // Self-consistent iteration:
    //   f_l <- -ln sum_n exp(-u_ln - ln D_n),
    //   D_n  = sum_m exp(logN_m + f_m - u_mn),
    // all in log space for stability.
    std::vector<double> logDenom(n);
    std::vector<double> fNew(k);
    for (int iter = 0; iter < params.maxIterations; ++iter) {
        for (std::size_t s = 0; s < n; ++s) {
            double m = -1e300;
            for (std::size_t l = 0; l < k; ++l)
                m = std::max(m,
                             logN[l] + f[l] - input.reducedEnergies[s][l]);
            double sum = 0.0;
            for (std::size_t l = 0; l < k; ++l)
                sum += std::exp(logN[l] + f[l] -
                                input.reducedEnergies[s][l] - m);
            logDenom[s] = m + std::log(sum);
        }
        for (std::size_t l = 0; l < k; ++l) {
            double m = -1e300;
            for (std::size_t s = 0; s < n; ++s)
                m = std::max(m, -input.reducedEnergies[s][l] - logDenom[s]);
            double sum = 0.0;
            for (std::size_t s = 0; s < n; ++s)
                sum += std::exp(-input.reducedEnergies[s][l] -
                                logDenom[s] - m);
            fNew[l] = -(m + std::log(sum));
        }
        // Gauge: f_0 = 0.
        const double f0 = fNew[0];
        for (double& v : fNew) v -= f0;
        double delta = 0.0;
        for (std::size_t l = 0; l < k; ++l)
            delta = std::max(delta, std::abs(fNew[l] - f[l]));
        f = fNew;
        result.iterations = iter + 1;
        result.residual = delta;
        if (delta < params.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.freeEnergies = std::move(f);
    return result;
}

MbarInput harmonicMbarInput(const std::vector<HarmonicState>& states,
                            std::size_t samplesPerState, double beta,
                            Rng& rng) {
    COP_REQUIRE(states.size() >= 2, "need at least two states");
    COP_REQUIRE(samplesPerState > 0, "need samples");
    COP_REQUIRE(beta > 0.0, "beta must be positive");
    MbarInput input;
    input.samplesPerState.assign(states.size(), samplesPerState);
    input.reducedEnergies.reserve(states.size() * samplesPerState);
    for (const auto& s : states) {
        const double sigma = 1.0 / std::sqrt(beta * s.k);
        for (std::size_t i = 0; i < samplesPerState; ++i) {
            const double x = rng.gaussian(s.x0, sigma);
            std::vector<double> row;
            row.reserve(states.size());
            for (const auto& target : states)
                row.push_back(beta * target.energy(x));
            input.reducedEnergies.push_back(std::move(row));
        }
    }
    return input;
}

} // namespace cop::fe
