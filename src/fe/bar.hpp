#pragma once

/// \file bar.hpp
/// Bennett Acceptance Ratio free-energy estimation. The paper (§5) lists a
/// BAR free-energy-perturbation controller as the second plugin shipped
/// with Copernicus; this module provides the estimator the plugin drives.
///
/// Conventions: reduced units with kB T = 1/beta; work values are energy
/// differences U_target - U_sampled evaluated on configurations drawn in
/// the sampled state.

#include <cstddef>
#include <vector>

namespace cop::fe {

struct BarResult {
    double deltaF = 0.0;       ///< free energy F1 - F0 (units of kT if beta=1)
    double standardError = 0.0;///< asymptotic standard error
    int iterations = 0;        ///< self-consistency iterations used
    bool converged = false;
};

struct BarParams {
    double beta = 1.0;
    double tolerance = 1e-10;
    int maxIterations = 200;
};

/// Bennett acceptance ratio from forward work samples (drawn in state 0:
/// W = U1 - U0) and reverse work samples (drawn in state 1: W = U0 - U1).
/// Solves the implicit BAR equation by damped fixed-point iteration and
/// reports the asymptotic variance estimate of Bennett (1976).
BarResult bar(const std::vector<double>& forwardWork,
              const std::vector<double>& reverseWork,
              const BarParams& params = {});

/// Zwanzig exponential averaging (one-sided FEP):
/// deltaF = -1/beta * ln < exp(-beta W) >.
double exponentialAveraging(const std::vector<double>& work,
                            double beta = 1.0);

/// Free energy along a chain of lambda windows: sums per-window BAR
/// results; errors add in quadrature.
struct LambdaChainResult {
    std::vector<BarResult> windows;
    double totalDeltaF = 0.0;
    double totalError = 0.0;
};
LambdaChainResult barChain(
    const std::vector<std::vector<double>>& forwardWorkPerWindow,
    const std::vector<std::vector<double>>& reverseWorkPerWindow,
    const BarParams& params = {});

} // namespace cop::fe
