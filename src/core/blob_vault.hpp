#pragma once

/// \file blob_vault.hpp
/// Interface the command queues use to park large input payloads
/// (checkpoints, starting structures) in a tiered store instead of
/// holding them inline. The queue stashes a command's bytes on insert,
/// fetches them back only when a claim actually ships the command to a
/// worker, and drops them on completion — so pending backlogs of any
/// depth cost the RAM tier, not the heap. Implemented by the server over
/// core::SegmentStore (segment_store.hpp).

#include <cstddef>

#include "core/command.hpp"
#include "core/shared_bytes.hpp"

namespace cop::core {

struct BlobVault {
    virtual ~BlobVault() = default;
    /// Parks (or replaces) a command's payload.
    virtual void stash(CommandId id, SharedBytes blob) = 0;
    /// Fetches a parked payload without releasing it.
    virtual SharedBytes fetch(CommandId id) = 0;
    /// Releases a parked payload.
    virtual void drop(CommandId id) = 0;
    virtual bool holds(CommandId id) const = 0;
    /// Raw byte size of a parked payload (0 when absent).
    virtual std::size_t sizeOf(CommandId id) const = 0;
};

} // namespace cop::core
