#include "core/copernicus.hpp"

namespace cop::core {

Client::Client(net::OverlayNetwork& network, std::string name,
               net::KeyPair keys)
    : network_(&network), node_(network, std::move(name), keys),
      endpoint_(network, node_) {
    endpoint_.onEnvelope(
        [this](const wire::Envelope& env, const net::Message&) {
            const auto* reply = std::get_if<ClientResponsePayload>(&env.payload);
            if (!reply) return;
            lastStatus_ = reply->text;
            lastAccepted_ = reply->accepted;
            lastRetryAfter_ = reply->retryAfterSeconds;
            if (!reply->accepted) ++shed_;
            ++responses_;
        });
}

void Client::requestStatus(net::NodeId server, ProjectId project) {
    sendCommand(server, project, "status");
}

void Client::sendCommand(net::NodeId server, ProjectId project,
                         const std::string& command) {
    ClientRequestPayload request;
    request.projectId = project;
    request.command = command;
    endpoint_.send(server, request);
}

namespace links {

net::LinkProperties intraCluster() {
    // QDR Infiniband-class: ~2.7 GB/s, microsecond-scale latency (paper §4).
    return net::LinkProperties{5e-6, 2.7e9};
}

net::LinkProperties dataCenter() {
    // Head-node to head-node within a site: 10 GbE-class.
    return net::LinkProperties{2e-4, 1.25e9};
}

net::LinkProperties wideArea() {
    // Stockholm <-> Palo Alto (paper Fig. 6: > 100 ms latency tier).
    return net::LinkProperties{0.12, 12.5e6};
}

} // namespace links

Deployment::Deployment(std::uint64_t seed)
    : network_(loop_), keySeed_(seed) {}

Server& Deployment::addServer(const std::string& name, ServerConfig config) {
    servers_.push_back(
        std::make_unique<Server>(network_, name, newKeys(), config));
    return *servers_.back();
}

void Deployment::connectServers(Server& a, Server& b,
                                net::LinkProperties props) {
    a.node().trust(b.node().publicKey());
    b.node().trust(a.node().publicKey());
    network_.connect(a.id(), b.id(), props);
    a.addPeer(b.id());
    b.addPeer(a.id());
}

Worker& Deployment::addWorker(const std::string& name, Server& closest,
                              WorkerConfig config,
                              ExecutableRegistry registry,
                              net::LinkProperties props) {
    workers_.push_back(std::make_unique<Worker>(
        network_, name, newKeys(), std::move(config), std::move(registry)));
    Worker& worker = *workers_.back();
    worker.node().trust(closest.node().publicKey());
    closest.node().trust(worker.node().publicKey());
    network_.connect(worker.id(), closest.id(), props);
    worker.start(closest.id());
    return worker;
}

void Deployment::addFallbackServer(Worker& worker, Server& fallback,
                                   net::LinkProperties props) {
    worker.node().trust(fallback.node().publicKey());
    fallback.node().trust(worker.node().publicKey());
    if (!network_.connected(worker.id(), fallback.id()))
        network_.connect(worker.id(), fallback.id(), props);
    worker.addFallbackServer(fallback.id());
}

Client& Deployment::addClient(const std::string& name, Server& server,
                              net::LinkProperties props) {
    clients_.push_back(
        std::make_unique<Client>(network_, name, newKeys()));
    Client& client = *clients_.back();
    client.node().trust(server.node().publicKey());
    server.node().trust(client.node().publicKey());
    network_.connect(client.id(), server.id(), props);
    return client;
}

bool Deployment::runUntilDone(double horizonSeconds) {
    auto allDone = [this] {
        for (const auto& s : servers_)
            if (!s->allProjectsDone()) return false;
        return true;
    };
    if (allDone()) return true;
    while (!loop_.empty() && loop_.now() < horizonSeconds) {
        // Check after every event: controllers flip to done inside an
        // event, and the next queued event may live hours later on the
        // virtual clock (a heartbeat sweep), which would otherwise drag
        // the reported completion time far past the real finish.
        loop_.run(1);
        if (allDone()) return true;
    }
    return allDone();
}

} // namespace cop::core
