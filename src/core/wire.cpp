#include "core/wire.hpp"

namespace cop::core {

namespace {

/// Shared whole-buffer wrappers around the streaming pair. The exact-size
/// reserve() prehint means envelope encoding never reallocates: one
/// allocation per message, asserted by the Wire.EncodedSizeIsExact test.
template <typename T>
std::vector<std::uint8_t> encodeWhole(const T& p) {
    BinaryWriter w;
    w.reserve(p.encodedSize());
    p.serialize(w);
    return w.takeBuffer();
}

template <typename T>
T decodeWhole(std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    T v = T::deserialize(r);
    // An envelope payload owns its whole buffer; bytes past the decoded
    // payload mean corruption (or an attack), not a compatible extension.
    if (!r.atEnd())
        throw IoError("malformed envelope: " + std::to_string(r.remaining()) +
                      " trailing bytes after payload");
    return v;
}

} // namespace

void WorkloadRequestPayload::serialize(BinaryWriter& w) const {
    w.write(std::int32_t(worker));
    w.write(platform);
    w.write(std::int32_t(cores));
    w.write(std::uint64_t(executables.size()));
    for (const auto& e : executables) w.write(e);
    w.write(std::uint64_t(visited.size()));
    for (auto v : visited) w.write(std::int32_t(v));
}

WorkloadRequestPayload WorkloadRequestPayload::deserialize(BinaryReader& r) {
    WorkloadRequestPayload p;
    p.worker = r.read<std::int32_t>();
    p.platform = r.readString();
    p.cores = r.read<std::int32_t>();
    // Element counts validated against the remaining bytes (each string
    // costs at least its 8-byte length prefix) before any growth loop.
    const auto ne = r.readCount(8);
    for (std::uint64_t i = 0; i < ne; ++i)
        p.executables.push_back(r.readString());
    const auto nv = r.readCount(4);
    for (std::uint64_t i = 0; i < nv; ++i)
        p.visited.push_back(r.read<std::int32_t>());
    return p;
}

void WorkloadAssignPayload::serialize(BinaryWriter& w) const {
    w.write(std::uint64_t(commands.size()));
    for (const auto& c : commands) c.serialize(w);
}

WorkloadAssignPayload WorkloadAssignPayload::deserialize(BinaryReader& r) {
    WorkloadAssignPayload p;
    const auto n = r.readCount(8); // conservative CommandSpec lower bound
    for (std::uint64_t i = 0; i < n; ++i)
        p.commands.push_back(CommandSpec::deserialize(r));
    return p;
}

void HeartbeatPayload::serialize(BinaryWriter& w) const {
    w.write(std::int32_t(worker));
    w.write(std::uint64_t(running.size()));
    for (auto id : running) w.write(id);
    w.write(std::uint64_t(projectServers.size()));
    for (auto s : projectServers) w.write(std::int32_t(s));
}

HeartbeatPayload HeartbeatPayload::deserialize(BinaryReader& r) {
    HeartbeatPayload p;
    p.worker = r.read<std::int32_t>();
    const auto n = r.readCount(8);
    for (std::uint64_t i = 0; i < n; ++i)
        p.running.push_back(r.read<std::uint64_t>());
    const auto m = r.readCount(4);
    for (std::uint64_t i = 0; i < m; ++i)
        p.projectServers.push_back(r.read<std::int32_t>());
    return p;
}

void CheckpointPayload::serialize(BinaryWriter& w) const {
    w.write(commandId);
    w.write(projectId);
    w.write(std::int32_t(projectServer));
    w.writeBytes(blob);
}

CheckpointPayload CheckpointPayload::deserialize(BinaryReader& r) {
    CheckpointPayload p;
    p.commandId = r.read<std::uint64_t>();
    p.projectId = r.read<std::uint64_t>();
    p.projectServer = r.read<std::int32_t>();
    p.blob = r.readBytes();
    return p;
}

void WorkerFailedPayload::serialize(BinaryWriter& w) const {
    w.write(std::int32_t(worker));
    w.write(std::uint64_t(commands.size()));
    for (auto id : commands) w.write(id);
    w.write(std::uint64_t(checkpoints.size()));
    for (const auto& c : checkpoints) w.writeBytes(c);
}

WorkerFailedPayload WorkerFailedPayload::deserialize(BinaryReader& r) {
    WorkerFailedPayload p;
    p.worker = r.read<std::int32_t>();
    const auto n = r.readCount(8);
    for (std::uint64_t i = 0; i < n; ++i)
        p.commands.push_back(r.read<std::uint64_t>());
    const auto m = r.readCount(8);
    for (std::uint64_t i = 0; i < m; ++i)
        p.checkpoints.push_back(r.readBytes());
    return p;
}

void CommandOutputPayload::serialize(BinaryWriter& w) const {
    result.serialize(w);
    w.write(std::int32_t(projectServer));
}

CommandOutputPayload CommandOutputPayload::deserialize(BinaryReader& r) {
    CommandOutputPayload p;
    p.result = CommandResult::deserialize(r);
    p.projectServer = r.read<std::int32_t>();
    return p;
}

void LeaseRenewPayload::serialize(BinaryWriter& w) const {
    w.write(std::int32_t(worker));
    w.write(std::uint64_t(commands.size()));
    for (auto id : commands) w.write(id);
}

LeaseRenewPayload LeaseRenewPayload::deserialize(BinaryReader& r) {
    LeaseRenewPayload p;
    p.worker = r.read<std::int32_t>();
    const auto n = r.readCount(8);
    for (std::uint64_t i = 0; i < n; ++i)
        p.commands.push_back(r.read<std::uint64_t>());
    return p;
}

void NoWorkPayload::serialize(BinaryWriter& w) const {
    w.write(std::int32_t(worker));
    w.write(retryAfterSeconds);
}

NoWorkPayload NoWorkPayload::deserialize(BinaryReader& r) {
    NoWorkPayload p;
    p.worker = r.read<std::int32_t>();
    p.retryAfterSeconds = r.read<double>();
    if (!(p.retryAfterSeconds >= 0.0)) // also rejects NaN
        throw IoError("negative or NaN retry-after in NoWork payload");
    return p;
}

void ClientRequestPayload::serialize(BinaryWriter& w) const {
    w.write(projectId);
    w.write(command);
}

ClientRequestPayload ClientRequestPayload::deserialize(BinaryReader& r) {
    ClientRequestPayload p;
    p.projectId = r.read<std::uint64_t>();
    p.command = r.readString();
    return p;
}

void ClientResponsePayload::serialize(BinaryWriter& w) const {
    w.write(text);
    w.write(std::uint8_t(accepted ? 1 : 0));
    w.write(retryAfterSeconds);
}

ClientResponsePayload ClientResponsePayload::deserialize(BinaryReader& r) {
    ClientResponsePayload p;
    p.text = r.readString();
    p.accepted = r.read<std::uint8_t>() != 0;
    p.retryAfterSeconds = r.read<double>();
    if (!(p.retryAfterSeconds >= 0.0)) // also rejects NaN
        throw IoError("negative or NaN retry-after in ClientResponse payload");
    return p;
}

void HeartbeatSummaryPayload::serialize(BinaryWriter& w) const {
    w.write(std::int32_t(edge));
    w.write(std::uint64_t(workers.size()));
    for (auto id : workers) w.write(std::int32_t(id));
    w.write(std::uint64_t(counts.size()));
    for (auto c : counts) w.write(c);
    w.write(std::uint64_t(commands.size()));
    for (auto id : commands) w.write(id);
}

HeartbeatSummaryPayload HeartbeatSummaryPayload::deserialize(BinaryReader& r) {
    HeartbeatSummaryPayload p;
    p.edge = r.read<std::int32_t>();
    const auto nw = r.readCount(4);
    for (std::uint64_t i = 0; i < nw; ++i)
        p.workers.push_back(r.read<std::int32_t>());
    const auto nc = r.readCount(4);
    if (nc != nw)
        throw IoError("heartbeat summary: " + std::to_string(nw) +
                      " workers but " + std::to_string(nc) + " counts");
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < nc; ++i) {
        p.counts.push_back(r.read<std::uint32_t>());
        total += p.counts.back();
    }
    const auto nk = r.readCount(8);
    // The per-worker grouping must tile the flattened command list
    // exactly; a mismatch means a corrupt (or hostile) summary and the
    // whole digest is rejected rather than mis-attributed.
    if (total != nk)
        throw IoError("heartbeat summary: counts sum to " +
                      std::to_string(total) + " but " + std::to_string(nk) +
                      " commands present");
    for (std::uint64_t i = 0; i < nk; ++i)
        p.commands.push_back(r.read<std::uint64_t>());
    return p;
}

void BatchPayload::serialize(BinaryWriter& w) const {
    w.write(std::uint64_t(entries.size()));
    for (const auto& e : entries) {
        w.write(std::uint8_t(e.type));
        w.write(e.messageId);
        w.write(std::uint8_t(e.requireAck ? 1 : 0));
        w.writeBytes(e.payload);
    }
}

BatchPayload BatchPayload::deserialize(BinaryReader& r) {
    BatchPayload p;
    // Each entry costs at least its 18-byte header (type + id + ack flag
    // + payload length prefix), so a hostile count is rejected against the
    // remaining bytes before the growth loop runs.
    const auto n = r.readCount(18);
    p.entries.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        BatchEntry e;
        const auto tag = r.read<std::uint8_t>();
        if (tag >= net::kMessageTypeCount)
            throw IoError("batch entry with unknown message type " +
                          std::to_string(tag));
        e.type = net::MessageType(tag);
        if (e.type == net::MessageType::Batch)
            throw IoError("nested batch envelope rejected");
        e.messageId = r.read<std::uint64_t>();
        e.requireAck = r.read<std::uint8_t>() != 0;
        e.payload = r.readBytes();
        p.entries.push_back(std::move(e));
    }
    return p;
}

std::size_t BatchPayload::bulkPayloadBytes() const {
    std::size_t n = 0;
    for (const auto& e : entries)
        if (net::isBulkDataMessage(e.type)) n += e.payload.size();
    return n;
}

void AckPayload::serialize(BinaryWriter& w) const {
    w.write(ackedMessageId);
}

AckPayload AckPayload::deserialize(BinaryReader& r) {
    AckPayload p;
    p.ackedMessageId = r.read<std::uint64_t>();
    return p;
}


// --- Exact wire sizes (must mirror the serialize() bodies above) --------

std::size_t WorkloadRequestPayload::encodedSize() const {
    std::size_t n = 4 + 8 + platform.size() + 4;
    n += 8;
    for (const auto& e : executables) n += 8 + e.size();
    n += 8 + 4 * visited.size();
    return n;
}

std::size_t WorkloadAssignPayload::encodedSize() const {
    std::size_t n = 8;
    for (const auto& c : commands) n += c.encodedSize();
    return n;
}

std::size_t HeartbeatPayload::encodedSize() const {
    return 4 + 8 + 8 * running.size() + 8 + 4 * projectServers.size();
}

std::size_t CheckpointPayload::encodedSize() const {
    return 8 + 8 + 4 + 8 + blob.size();
}

std::size_t WorkerFailedPayload::encodedSize() const {
    std::size_t n = 4 + 8 + 8 * commands.size() + 8;
    for (const auto& c : checkpoints) n += 8 + c.size();
    return n;
}

std::size_t CommandOutputPayload::encodedSize() const {
    return result.encodedSize() + 4;
}

std::size_t LeaseRenewPayload::encodedSize() const {
    return 4 + 8 + 8 * commands.size();
}

std::size_t NoWorkPayload::encodedSize() const { return 4 + 8; }

std::size_t ClientRequestPayload::encodedSize() const {
    return 8 + 8 + command.size();
}

std::size_t ClientResponsePayload::encodedSize() const {
    return 8 + text.size() + 1 + 8;
}

std::size_t HeartbeatSummaryPayload::encodedSize() const {
    return 4 + 8 + 4 * workers.size() + 8 + 4 * counts.size() + 8 +
           8 * commands.size();
}

std::size_t AckPayload::encodedSize() const { return 8; }

std::size_t BatchPayload::encodedSize() const {
    std::size_t n = 8;
    for (const auto& e : entries) n += 18 + e.payload.size();
    return n;
}

// Whole-buffer wrappers, one pair per payload.
#define COP_WIRE_WHOLE(T)                                                    \
    std::vector<std::uint8_t> T::encode() const { return encodeWhole(*this); } \
    T T::decode(std::span<const std::uint8_t> data) {                        \
        return decodeWhole<T>(data);                                         \
    }

COP_WIRE_WHOLE(WorkloadRequestPayload)
COP_WIRE_WHOLE(WorkloadAssignPayload)
COP_WIRE_WHOLE(HeartbeatPayload)
COP_WIRE_WHOLE(CheckpointPayload)
COP_WIRE_WHOLE(WorkerFailedPayload)
COP_WIRE_WHOLE(CommandOutputPayload)
COP_WIRE_WHOLE(LeaseRenewPayload)
COP_WIRE_WHOLE(NoWorkPayload)
COP_WIRE_WHOLE(ClientRequestPayload)
COP_WIRE_WHOLE(ClientResponsePayload)
COP_WIRE_WHOLE(HeartbeatSummaryPayload)
COP_WIRE_WHOLE(AckPayload)
COP_WIRE_WHOLE(BatchPayload)

#undef COP_WIRE_WHOLE

} // namespace cop::core
