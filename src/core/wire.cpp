#include "core/wire.hpp"

namespace cop::core {

std::vector<std::uint8_t> WorkloadRequestPayload::encode() const {
    BinaryWriter w;
    w.write(std::int32_t(worker));
    w.write(platform);
    w.write(std::int32_t(cores));
    w.write(std::uint64_t(executables.size()));
    for (const auto& e : executables) w.write(e);
    w.write(std::uint64_t(visited.size()));
    for (auto v : visited) w.write(std::int32_t(v));
    return w.takeBuffer();
}

WorkloadRequestPayload WorkloadRequestPayload::decode(
    std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    WorkloadRequestPayload p;
    p.worker = r.read<std::int32_t>();
    p.platform = r.readString();
    p.cores = r.read<std::int32_t>();
    const auto ne = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < ne; ++i)
        p.executables.push_back(r.readString());
    const auto nv = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < nv; ++i)
        p.visited.push_back(r.read<std::int32_t>());
    return p;
}

std::vector<std::uint8_t> WorkloadAssignPayload::encode() const {
    BinaryWriter w;
    w.write(std::uint64_t(commands.size()));
    for (const auto& c : commands) c.serialize(w);
    return w.takeBuffer();
}

WorkloadAssignPayload WorkloadAssignPayload::decode(
    std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    WorkloadAssignPayload p;
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i)
        p.commands.push_back(CommandSpec::deserialize(r));
    return p;
}

std::vector<std::uint8_t> HeartbeatPayload::encode() const {
    BinaryWriter w;
    w.write(std::int32_t(worker));
    w.write(std::uint64_t(running.size()));
    for (auto id : running) w.write(id);
    w.write(std::uint64_t(projectServers.size()));
    for (auto s : projectServers) w.write(std::int32_t(s));
    return w.takeBuffer();
}

HeartbeatPayload HeartbeatPayload::decode(std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    HeartbeatPayload p;
    p.worker = r.read<std::int32_t>();
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i)
        p.running.push_back(r.read<std::uint64_t>());
    const auto m = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < m; ++i)
        p.projectServers.push_back(r.read<std::int32_t>());
    return p;
}

std::vector<std::uint8_t> CheckpointPayload::encode() const {
    BinaryWriter w;
    w.write(commandId);
    w.write(projectId);
    w.write(std::int32_t(projectServer));
    w.writeBytes(blob);
    return w.takeBuffer();
}

CheckpointPayload CheckpointPayload::decode(
    std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    CheckpointPayload p;
    p.commandId = r.read<std::uint64_t>();
    p.projectId = r.read<std::uint64_t>();
    p.projectServer = r.read<std::int32_t>();
    p.blob = r.readBytes();
    return p;
}

std::vector<std::uint8_t> WorkerFailedPayload::encode() const {
    BinaryWriter w;
    w.write(std::int32_t(worker));
    w.write(std::uint64_t(commands.size()));
    for (auto id : commands) w.write(id);
    w.write(std::uint64_t(checkpoints.size()));
    for (const auto& c : checkpoints) w.writeBytes(c);
    return w.takeBuffer();
}

WorkerFailedPayload WorkerFailedPayload::decode(
    std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    WorkerFailedPayload p;
    p.worker = r.read<std::int32_t>();
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i)
        p.commands.push_back(r.read<std::uint64_t>());
    const auto m = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < m; ++i)
        p.checkpoints.push_back(r.readBytes());
    return p;
}

} // namespace cop::core
