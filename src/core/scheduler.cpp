#include "core/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cop::core {

namespace {

/// Upper bound on banked DRR credit, in cores. A backlogged tenant whose
/// commands never fit the current offers keeps accumulating deficit (it is
/// genuinely being starved and is owed a burst when a big-enough offer
/// arrives), but the burst it can cash in at once stays bounded.
constexpr double kDeficitCap = 1024.0;

} // namespace

void ShardedScheduler::addTenant(ProjectId id, TenantConfig config) {
    COP_REQUIRE(config.weight > 0.0, "tenant weight must be positive");
    auto [it, inserted] = shards_.emplace(id, Shard{});
    COP_REQUIRE(inserted,
                "duplicate tenant id " + std::to_string(id));
    it->second.config = config;
    if (vault_) it->second.queue.setVault(vault_);
    ring_.clear();
    ring_.reserve(shards_.size());
    for (const auto& [pid, shard] : shards_) {
        (void)shard;
        ring_.push_back(pid);
    }
    if (cursor_ >= ring_.size()) cursor_ = 0;
}

const TenantConfig& ShardedScheduler::tenantConfig(ProjectId id) const {
    return shards_.at(id).config;
}

std::vector<ProjectId> ShardedScheduler::tenantIds() const { return ring_; }

AdmissionDecision ShardedScheduler::admit(ProjectId tenant,
                                          const CommandSpec& cmd) const {
    const Shard& s = shards_.at(tenant);
    const TenantConfig& cfg = s.config;
    if (cfg.maxPendingCommands > 0 &&
        s.queue.pendingCount() >= cfg.maxPendingCommands)
        return {false, cfg.admissionRetryAfter};
    if (cfg.maxPendingBytes > 0 &&
        s.queue.pendingBytes() + cmd.input.size() > cfg.maxPendingBytes)
        return {false, cfg.admissionRetryAfter};
    return {true, 0.0};
}

AdmissionDecision ShardedScheduler::push(ProjectId tenant, CommandSpec cmd,
                                         bool force) {
    auto it = shards_.find(tenant);
    COP_REQUIRE(it != shards_.end(),
                "push for unknown tenant " + std::to_string(tenant));
    COP_REQUIRE(cmd.projectId == tenant, "command/tenant project mismatch");
    Shard& s = it->second;
    if (!force) {
        const auto decision = admit(tenant, cmd);
        if (!decision.admitted) {
            ++s.counters.admissionRejections;
            return decision;
        }
    }
    const CommandId cid = cmd.id;
    s.queue.push(std::move(cmd));
    ++s.counters.pushes;
    owners_[cid] = tenant;
    notePendingPeaks(s);
    return {true, 0.0};
}

bool ShardedScheduler::hasWorkFor(
    const std::vector<std::string>& executables) const {
    for (const auto& [pid, s] : shards_) {
        (void)pid;
        if (s.queue.hasWorkFor(executables)) return true;
    }
    return false;
}

std::vector<CommandSpec> ShardedScheduler::claim(
    const std::vector<std::string>& executables, int maxCores,
    net::NodeId worker) {
    std::vector<CommandSpec> out;
    if (ring_.empty() || maxCores <= 0) return out;

    // Shards with matching work, visited in ring order from the cursor so
    // service opportunities rotate across claim calls.
    struct Active {
        Shard* shard;
        std::size_t ringPos;
        bool exhausted = false; ///< cannot use even the full remaining budget
    };
    std::vector<Active> active;
    const std::size_t n = ring_.size();
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t pos = (cursor_ + k) % n;
        Shard& s = shards_.at(ring_[pos]);
        if (s.queue.hasWorkFor(executables))
            active.push_back(Active{&s, pos});
        else if (s.queue.pendingCount() == 0)
            s.deficit = 0.0; // drained shard forfeits banked credit
    }
    if (active.empty()) return out;

    if (active.size() == 1) {
        // Single-tenant fast path: no other tenant competes, so DRR would
        // only chop the offer into deficit-sized claims and change the
        // assembled workload. Offer the full budget in one shot — exactly
        // the pre-shard single-queue behaviour.
        Shard& s = *active.front().shard;
        auto claimed =
            s.queue.claim(executables, maxCores, worker, s.config.claimPolicy);
        for (const auto& c : claimed) {
            s.counters.coresGranted += std::uint64_t(c.preferredCores);
        }
        s.counters.commandsClaimed += claimed.size();
        if (s.queue.pendingCount() == 0) s.deficit = 0.0;
        return claimed;
    }

    int remaining = maxCores;
    std::size_t lastServedPos = active.front().ringPos;
    bool servedAny = false;
    while (remaining > 0) {
        bool progress = false;
        std::size_t live = 0;
        for (auto& a : active) {
            if (remaining <= 0) break;
            if (a.exhausted) continue;
            Shard& s = *a.shard;
            if (!s.queue.hasWorkFor(executables)) {
                if (s.queue.pendingCount() == 0) s.deficit = 0.0;
                a.exhausted = true;
                continue;
            }
            ++live;
            s.deficit =
                std::min(s.deficit + quantum_ * s.config.weight, kDeficitCap);
            const int budget = std::min(remaining, int(s.deficit));
            if (budget <= 0) continue; // credit below one core so far
            auto claimed = s.queue.claim(executables, budget, worker,
                                         s.config.claimPolicy);
            if (claimed.empty()) {
                // Nothing fits the deficit-limited budget. Once the budget
                // saturates the whole remaining offer, more credit cannot
                // help this call: retire the shard from this round-robin.
                if (budget == remaining) a.exhausted = true;
                continue;
            }
            int cores = 0;
            for (const auto& c : claimed) cores += c.preferredCores;
            s.deficit -= double(cores);
            remaining -= cores;
            s.counters.commandsClaimed += claimed.size();
            s.counters.coresGranted += std::uint64_t(cores);
            progress = true;
            servedAny = true;
            lastServedPos = a.ringPos;
            for (auto& c : claimed) out.push_back(std::move(c));
            if (s.queue.pendingCount() == 0) s.deficit = 0.0;
        }
        if (live == 0) break;
        if (!progress) {
            // No shard could cash its credit this round (commands larger
            // than every deficit). Jump every live deficit straight to the
            // remaining budget instead of drip-feeding quantum-sized
            // rounds: the next pass either claims or proves that nothing
            // fits the offer at all.
            for (auto& a : active) {
                if (!a.exhausted)
                    a.shard->deficit = std::min(
                        kDeficitCap,
                        std::max(a.shard->deficit, double(remaining)));
            }
        }
    }
    // Rotate the service origin past the last tenant that actually claimed
    // so the next offer starts with its successor.
    cursor_ = servedAny ? (lastServedPos + 1) % n : (cursor_ + 1) % n;
    return out;
}

std::optional<CommandSpec> ShardedScheduler::complete(CommandId id) {
    auto owner = owners_.find(id);
    if (owner == owners_.end()) return std::nullopt;
    Shard& s = shards_.at(owner->second);
    auto spec = s.queue.complete(id);
    // complete() only retires in-flight commands; a still-pending id keeps
    // its owner entry (and its queue slot) exactly like the flat queue.
    if (spec) owners_.erase(owner);
    return spec;
}

std::vector<CommandId> ShardedScheduler::requeueWorker(net::NodeId worker) {
    std::vector<CommandId> requeued;
    for (auto& [pid, s] : shards_) {
        (void)pid;
        auto ids = s.queue.requeueWorker(worker);
        s.counters.commandsRequeued += ids.size();
        if (!ids.empty()) notePendingPeaks(s);
        requeued.insert(requeued.end(), ids.begin(), ids.end());
    }
    return requeued;
}

bool ShardedScheduler::requeueCommand(CommandId id) {
    auto owner = owners_.find(id);
    if (owner == owners_.end()) return false;
    Shard& s = shards_.at(owner->second);
    if (!s.queue.requeueCommand(id)) return false;
    ++s.counters.commandsRequeued;
    notePendingPeaks(s);
    return true;
}

void ShardedScheduler::updateCheckpoint(CommandId id, SharedBytes checkpoint) {
    auto owner = owners_.find(id);
    if (owner == owners_.end()) {
        ++orphanCheckpoints_;
        return;
    }
    shards_.at(owner->second).queue.updateCheckpoint(id, std::move(checkpoint));
}

std::optional<net::NodeId> ShardedScheduler::holderOf(CommandId id) const {
    auto owner = owners_.find(id);
    if (owner == owners_.end()) return std::nullopt;
    return shards_.at(owner->second).queue.holderOf(id);
}

std::size_t ShardedScheduler::pendingCount() const {
    std::size_t total = 0;
    for (const auto& [pid, s] : shards_) {
        (void)pid;
        total += s.queue.pendingCount();
    }
    return total;
}

std::size_t ShardedScheduler::inFlightCount() const {
    std::size_t total = 0;
    for (const auto& [pid, s] : shards_) {
        (void)pid;
        total += s.queue.inFlightCount();
    }
    return total;
}

std::size_t ShardedScheduler::pendingOf(ProjectId tenant) const {
    return shards_.at(tenant).queue.pendingCount();
}

std::size_t ShardedScheduler::pendingBytesOf(ProjectId tenant) const {
    return shards_.at(tenant).queue.pendingBytes();
}

std::size_t ShardedScheduler::inFlightOf(ProjectId tenant) const {
    return shards_.at(tenant).queue.inFlightCount();
}

const CommandQueue& ShardedScheduler::shard(ProjectId tenant) const {
    return shards_.at(tenant).queue;
}

const SchedulerStats& ShardedScheduler::stats() const {
    aggregate_ = SchedulerStats{};
    for (const auto& [pid, s] : shards_) {
        (void)pid;
        const SchedulerStats& q = s.queue.stats();
        aggregate_.pushes += q.pushes;
        aggregate_.duplicatePushesRejected += q.duplicatePushesRejected;
        aggregate_.claims += q.claims;
        aggregate_.commandsClaimed += q.commandsClaimed;
        aggregate_.commandsRequeued += q.commandsRequeued;
        aggregate_.claimScanSteps += q.claimScanSteps;
        aggregate_.hasWorkProbes += q.hasWorkProbes;
        aggregate_.checkpointUpdates += q.checkpointUpdates;
        aggregate_.checkpointBytesShared += q.checkpointBytesShared;
        aggregate_.checkpointDeepCopies += q.checkpointDeepCopies;
        aggregate_.checkpointsUnknownId += q.checkpointsUnknownId;
    }
    aggregate_.checkpointsUnknownId += orphanCheckpoints_;
    return aggregate_;
}

const TenantCounters& ShardedScheduler::tenantStats(ProjectId tenant) const {
    return shards_.at(tenant).counters;
}

void ShardedScheduler::setQuantum(double coresPerRound) {
    COP_REQUIRE(coresPerRound > 0.0, "DRR quantum must be positive");
    quantum_ = coresPerRound;
}

void ShardedScheduler::setVault(BlobVault* vault) {
    vault_ = vault;
    for (auto& [pid, s] : shards_) {
        (void)pid;
        s.queue.setVault(vault);
    }
}

void ShardedScheduler::forEachPending(
    const std::function<void(ProjectId, const CommandSpec&)>& fn) const {
    for (const auto& [pid, s] : shards_)
        s.queue.forEachPending(
            [&](const CommandSpec& spec) { fn(pid, spec); });
}

void ShardedScheduler::forEachInFlight(
    const std::function<void(ProjectId, const CommandSpec&, net::NodeId)>&
        fn) const {
    for (const auto& [pid, s] : shards_)
        s.queue.forEachInFlight(
            [&](const CommandSpec& spec, net::NodeId worker) {
                fn(pid, spec, worker);
            });
}

void ShardedScheduler::serialize(BinaryWriter& w) const {
    w.write(std::uint64_t(shards_.size()));
    for (const auto& [pid, s] : shards_) {
        w.write(std::uint64_t(pid));
        const TenantConfig& c = s.config;
        w.write(c.weight);
        w.write(std::uint8_t(c.claimPolicy));
        w.write(std::uint64_t(c.maxPendingCommands));
        w.write(std::uint64_t(c.maxPendingBytes));
        w.write(c.admissionRetryAfter);
        w.write(s.deficit);
        const TenantCounters& t = s.counters;
        w.write(t.pushes);
        w.write(t.admissionRejections);
        w.write(t.commandsClaimed);
        w.write(t.coresGranted);
        w.write(t.commandsRequeued);
        w.write(std::uint64_t(t.pendingPeak));
        w.write(std::uint64_t(t.pendingBytesPeak));
        s.queue.serialize(w);
    }
    // ring_ is always the sorted tenant-id order (rebuilt by addTenant),
    // so only the service cursor needs to travel.
    w.write(std::uint64_t(cursor_));
    w.write(quantum_);
    w.write(orphanCheckpoints_);
}

void ShardedScheduler::restore(BinaryReader& r) {
    COP_REQUIRE(shards_.empty(), "restore into a non-empty scheduler");
    const std::uint64_t tenants = r.readCount(128);
    for (std::uint64_t i = 0; i < tenants; ++i) {
        const auto pid = ProjectId(r.read<std::uint64_t>());
        TenantConfig c;
        c.weight = r.read<double>();
        const auto policy = r.read<std::uint8_t>();
        COP_IO_CHECK(policy <= std::uint8_t(ClaimPolicy::LargestFit),
                     "scheduler restore: bad claim policy");
        c.claimPolicy = ClaimPolicy(policy);
        c.maxPendingCommands = std::size_t(r.read<std::uint64_t>());
        c.maxPendingBytes = std::size_t(r.read<std::uint64_t>());
        c.admissionRetryAfter = r.read<double>();
        COP_IO_CHECK(c.weight > 0.0,
                     "scheduler restore: non-positive tenant weight");
        COP_IO_CHECK(!hasTenant(pid), "scheduler restore: duplicate tenant");
        addTenant(pid, c);
        Shard& s = shards_.at(pid);
        s.deficit = r.read<double>();
        TenantCounters& t = s.counters;
        t.pushes = r.read<std::uint64_t>();
        t.admissionRejections = r.read<std::uint64_t>();
        t.commandsClaimed = r.read<std::uint64_t>();
        t.coresGranted = r.read<std::uint64_t>();
        t.commandsRequeued = r.read<std::uint64_t>();
        t.pendingPeak = std::size_t(r.read<std::uint64_t>());
        t.pendingBytesPeak = std::size_t(r.read<std::uint64_t>());
        s.queue.restore(r);
        s.queue.forEachPending([&](const CommandSpec& spec) {
            COP_IO_CHECK(owners_.emplace(spec.id, pid).second,
                         "scheduler restore: id owned by two tenants");
        });
        s.queue.forEachInFlight([&](const CommandSpec& spec, net::NodeId) {
            COP_IO_CHECK(owners_.emplace(spec.id, pid).second,
                         "scheduler restore: id owned by two tenants");
        });
    }
    cursor_ = std::size_t(r.read<std::uint64_t>());
    COP_IO_CHECK(ring_.empty() ? cursor_ == 0 : cursor_ < ring_.size(),
                 "scheduler restore: cursor out of range");
    quantum_ = r.read<double>();
    COP_IO_CHECK(quantum_ > 0.0, "scheduler restore: bad quantum");
    orphanCheckpoints_ = r.read<std::uint64_t>();
}

void ShardedScheduler::notePendingPeaks(Shard& s) {
    s.counters.pendingPeak =
        std::max(s.counters.pendingPeak, s.queue.pendingCount());
    s.counters.pendingBytesPeak =
        std::max(s.counters.pendingBytesPeak, s.queue.pendingBytes());
}

} // namespace cop::core
