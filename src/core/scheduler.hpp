#pragma once

/// \file scheduler.hpp
/// Multi-tenant sharded scheduling plane (see DESIGN.md "Multi-tenant
/// scheduling plane"). Each hosted project ("tenant") owns a private
/// CommandQueue shard — the PR 4 indexed buckets — so one project's
/// backlog can never inflate another's claim scans. Across shards, worker
/// core offers are divided by weighted deficit-round-robin: every tenant
/// carries a deficit counter topped up in proportion to its fair-share
/// weight each service round, and a shard may claim commands only while
/// their core cost fits its deficit. A tenant whose shard drains forfeits
/// its deficit (classic DRR), so idle tenants cannot bank credit and
/// backlogged tenants converge to weight-proportional core shares.
///
/// When exactly one tenant has matching work the DRR machinery is bypassed
/// and the shard is offered the full core budget — observably identical to
/// the pre-shard single-queue scheduler (and the reason the single-tenant
/// macro_overlay numbers carry over unchanged).
///
/// Admission control: each tenant may cap its pending depth (commands and
/// payload bytes). A push over quota is rejected with a suggested
/// retry-after; requeues of in-flight work always bypass admission
/// (recovery must never be load-shed).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/queue.hpp"

namespace cop::core {

/// Per-tenant scheduling contract, fixed at project creation.
struct TenantConfig {
    /// Fair-share weight: backlogged tenants receive worker cores in
    /// proportion to their weights (deficit-round-robin).
    double weight = 1.0;
    /// How this tenant's shard assembles workloads from its own commands.
    ClaimPolicy claimPolicy = ClaimPolicy::FirstFit;
    /// Admission quota: maximum pending (not in-flight) commands before
    /// new submissions are rejected. 0 = unlimited.
    std::size_t maxPendingCommands = 0;
    /// Admission quota: maximum pending payload bytes. 0 = unlimited.
    std::size_t maxPendingBytes = 0;
    /// Suggested client/controller backoff when a submission is rejected.
    double admissionRetryAfter = 30.0;
};

/// Outcome of an admission-controlled push.
struct AdmissionDecision {
    bool admitted = true;
    double retryAfter = 0.0; ///< seconds; meaningful when !admitted
};

/// Per-tenant scheduling counters (exposed via Server::metricsSnapshot).
struct TenantCounters {
    std::uint64_t pushes = 0;
    std::uint64_t admissionRejections = 0;
    std::uint64_t commandsClaimed = 0;
    std::uint64_t coresGranted = 0;   ///< preferredCores summed over claims
    std::uint64_t commandsRequeued = 0;
    std::size_t pendingPeak = 0;      ///< high-water pending depth
    std::size_t pendingBytesPeak = 0; ///< high-water pending payload bytes
};

class ShardedScheduler {
public:
    /// Registers a tenant with its scheduling contract. Weights must be
    /// positive; a duplicate id is a programming error.
    void addTenant(ProjectId id, TenantConfig config);
    bool hasTenant(ProjectId id) const { return shards_.count(id) > 0; }
    const TenantConfig& tenantConfig(ProjectId id) const;
    std::size_t tenantCount() const { return shards_.size(); }
    std::vector<ProjectId> tenantIds() const;

    /// Checks a submission against the tenant's admission quotas without
    /// queueing anything.
    AdmissionDecision admit(ProjectId tenant, const CommandSpec& cmd) const;

    /// Queues a command on its tenant's shard. With force=false the
    /// admission quotas apply and a rejected command is NOT queued; with
    /// force=true (requeues, trusted controller paths) admission is
    /// bypassed. cmd.projectId must equal `tenant`.
    AdmissionDecision push(ProjectId tenant, CommandSpec cmd,
                           bool force = false);

    /// True if any shard has pending work for one of the executables.
    bool hasWorkFor(const std::vector<std::string>& executables) const;

    /// Claims up to maxCores worth of commands across tenants under
    /// weighted DRR; each shard claims with its own ClaimPolicy.
    std::vector<CommandSpec> claim(const std::vector<std::string>& executables,
                                   int maxCores, net::NodeId worker);

    /// Cross-shard command operations (the id alone routes to its shard).
    std::optional<CommandSpec> complete(CommandId id);
    std::vector<CommandId> requeueWorker(net::NodeId worker);
    bool requeueCommand(CommandId id);
    void updateCheckpoint(CommandId id, SharedBytes checkpoint);
    std::optional<net::NodeId> holderOf(CommandId id) const;

    std::size_t pendingCount() const;
    std::size_t inFlightCount() const;
    std::size_t pendingOf(ProjectId tenant) const;
    std::size_t pendingBytesOf(ProjectId tenant) const;
    std::size_t inFlightOf(ProjectId tenant) const;

    /// A tenant's private queue shard (tests/benches introspect it).
    const CommandQueue& shard(ProjectId tenant) const;

    /// Aggregate hot-path counters summed over every shard. Returns a
    /// reference into a cached member recomputed per call, matching the
    /// pre-shard Server::schedulerStats() signature.
    const SchedulerStats& stats() const;
    const TenantCounters& tenantStats(ProjectId tenant) const;

    /// DRR quantum: deficit added per service round is quantum * weight
    /// cores. Smaller = finer-grained fairness, more rounds per claim.
    void setQuantum(double coresPerRound);
    double quantum() const { return quantum_; }

    /// Attaches a payload vault, propagated to every shard queue (existing
    /// and future tenants). Must be attached before commands are queued.
    void setVault(BlobVault* vault);

    /// Cross-shard enumeration for recovery bookkeeping: tenants in
    /// ascending id order, then each shard's bucket order. Stashed inputs
    /// stay parked (spec.input may be empty when a vault is attached).
    void forEachPending(
        const std::function<void(ProjectId, const CommandSpec&)>& fn) const;
    void forEachInFlight(
        const std::function<void(ProjectId, const CommandSpec&,
                                 net::NodeId)>& fn) const;

    /// Full-state serialization for WAL snapshots (tenant contracts, DRR
    /// state, every shard queue). restore() expects a freshly constructed
    /// scheduler and treats the stream as untrusted (throws IoError).
    void serialize(BinaryWriter& w) const;
    void restore(BinaryReader& r);

private:
    struct Shard {
        CommandQueue queue;
        TenantConfig config;
        double deficit = 0.0;
        TenantCounters counters;
    };

    void notePendingPeaks(Shard& s);

    std::map<ProjectId, Shard> shards_;
    /// CommandId -> owning tenant, for pending + in-flight commands.
    std::unordered_map<CommandId, ProjectId> owners_;
    /// Ring order for DRR service; rebuilt when tenants are added.
    std::vector<ProjectId> ring_;
    std::size_t cursor_ = 0; ///< next ring position to start service from
    double quantum_ = 1.0;
    BlobVault* vault_ = nullptr; ///< optional tiered payload store
    /// Checkpoints for ids no shard knows (late arrivals after completion).
    std::uint64_t orphanCheckpoints_ = 0;
    mutable SchedulerStats aggregate_; ///< cache for stats()
};

} // namespace cop::core
