#include "core/msm_controller.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "core/backends.hpp"
#include "mdlib/observables.hpp"
#include "mdlib/units.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/statistics.hpp"
#include "util/string_util.hpp"

namespace cop::core {

MsmController::MsmController(MsmControllerParams params)
    : params_(std::move(params)), rng_(params_.seed),
      msmBuilder_(msm::IncrementalMsmParams{
          params_.pipeline, params_.msmRebuildRadiusFactor}) {
    COP_REQUIRE(!params_.startingConformations.empty(),
                "need at least one starting conformation");
    COP_REQUIRE(params_.tasksPerStart >= 1, "tasksPerStart must be >= 1");
    COP_REQUIRE(params_.segmentSteps > 0, "segmentSteps must be > 0");
    COP_REQUIRE(params_.maxGenerations >= 1, "maxGenerations must be >= 1");
    if (params_.commandsPerGeneration <= 0)
        params_.commandsPerGeneration =
            int(params_.startingConformations.size()) * params_.tasksPerStart;
}

void MsmController::onProjectStart(ProjectContext& ctx) {
    spawnInitialSwarm(ctx);
}

void MsmController::spawnInitialSwarm(ProjectContext& ctx) {
    for (const auto& start : params_.startingConformations) {
        COP_REQUIRE(start.size() == params_.model.numResidues(),
                    "starting conformation size mismatch");
        for (int t = 0; t < params_.tasksPerStart; ++t) {
            md::SimulationConfig cfg = params_.simulation;
            cfg.seed = rng_.next();
            md::Simulation sim =
                md::Simulation::forGoModel(params_.model, start, cfg);
            sim.initializeVelocities();
            submitSegment(ctx, nextTrajectoryId_++, sim.checkpoint());
        }
    }
}

void MsmController::submitSegment(ProjectContext& ctx, int trajectoryId,
                                  std::vector<std::uint8_t> checkpoint) {
    CommandSpec spec;
    spec.executable = "mdrun";
    spec.steps = params_.segmentSteps;
    spec.preferredCores = 1;
    spec.trajectoryId = trajectoryId;
    spec.generation = generation_;
    spec.input = std::move(checkpoint);
    ctx.submitCommand(std::move(spec));
}

void MsmController::onCommandFinished(ProjectContext& ctx,
                                      const CommandResult& result) {
    if (done_) return;
    const auto out = MdrunOutput::decode(result.output);

    // Accumulate the segment and scan it for monitoring statistics.
    auto& traj = trajectories_[result.trajectoryId];
    const std::size_t firstNew = traj.numFrames() == 0 ? 0 : 1;
    for (std::size_t f = firstNew; f < out.segment.numFrames(); ++f) {
        const auto& frame = out.segment.frame(f);
        const double r = md::toAngstrom(
            md::rmsd(params_.model.native, frame.positions));
        if (r < minRmsdAngstrom_) minRmsdAngstrom_ = r;
        if (r < md::kFoldedRmsdAngstrom && firstFoldedTime_ < 0.0) {
            firstFoldedTime_ = ctx.now();
            firstFoldedGeneration_ = generation_;
        }
        traj.append(frame);
    }

    ++resultsSinceClustering_;
    if (resultsSinceClustering_ >= params_.commandsPerGeneration) {
        clusteringStep(ctx);
    } else if (result.generation == generation_) {
        // Current-generation trajectory: the controller extends the run by
        // another segment (paper §3.2).
        submitSegment(ctx, result.trajectoryId,
                      std::vector<std::uint8_t>(out.checkpoint));
    }
    // Results from older generations are recorded but their trajectories
    // were marked for termination at the last clustering step.
}

void MsmController::onCommandFailed(ProjectContext& ctx,
                                    const CommandSpec& spec) {
    // Failed commands are simply resubmitted from their newest checkpoint
    // (the spec the queue hands back already carries it).
    COP_LOG_INFO("msm") << "resubmitting failed command for trajectory "
                        << spec.trajectoryId;
    CommandSpec again = spec;
    again.id = 0;
    ctx.submitCommand(std::move(again));
}

void MsmController::clusteringStep(ProjectContext& ctx) {
    resultsSinceClustering_ = 0;
    ++generation_;

    // The incremental builder keeps clustering state between generations,
    // so the controller hands it non-owning pointers instead of deep
    // copies; only newly appended frames are snapshotted and assigned.
    std::vector<std::pair<int, const md::Trajectory*>> trajs;
    trajs.reserve(trajectories_.size());
    for (const auto& [id, traj] : trajectories_) {
        if (traj.numFrames() == 0) continue;
        trajs.emplace_back(id, &traj);
    }
    COP_REQUIRE(!trajs.empty(), "clustering with no data");

    msmBuilder_.setNumClusters(params_.pipeline.numClusters);
    msmBuilder_.setSeed(rng_.next());
    lastMsm_ = msmBuilder_.update(trajs, params_.analysisPool);
    const auto& msmResult = *lastMsm_;
    COP_LOG_INFO("msm") << msmResult.stats.summary();

    GenerationRecord rec;
    rec.generation = generation_;
    rec.wallClockSimTime = ctx.now();
    rec.numClusters = msmResult.clustering.numClusters();
    rec.minRmsdAngstrom = minRmsdAngstrom_;
    rec.msmStats = msmResult.stats;

    // Snapshot monitoring statistics, extended by the frames that arrived
    // since the last clustering step (rmsd-to-native per frame is
    // immutable, so accumulating is equivalent to the full rescan).
    for (const auto& [id, traj] : trajectories_) {
        if (traj.numFrames() == 0) continue;
        std::size_t& from = statScanFrom_[id];
        for (std::size_t f = from; f < traj.numFrames();
             f += params_.pipeline.snapshotStride) {
            const double r = md::toAngstrom(
                md::rmsd(params_.model.native, traj.frame(f).positions));
            snapshotRmsdStats_.add(r);
            if (r < md::kFoldedRmsdAngstrom) ++snapshotsFolded_;
            ++snapshotsSeen_;
            from = f + params_.pipeline.snapshotStride;
        }
    }
    rec.totalSnapshots = snapshotsSeen_;
    rec.meanRmsdAngstrom = snapshotRmsdStats_.mean();
    rec.foldedFraction = snapshotsSeen_ ? double(snapshotsFolded_) /
                                              double(snapshotsSeen_)
                                        : 0.0;
    rec.predictedRmsdAngstrom = scoreBlindPrediction(msmResult);

    if (generation_ >= params_.maxGenerations) {
        done_ = true;
        history_.push_back(rec);
        COP_LOG_INFO("msm") << "project finished after generation "
                            << generation_;
        return;
    }

    // Adaptive sampling: spawn the next generation's trajectories from
    // cluster representatives, weighted per the configured scheme.
    msm::AdaptiveParams ap;
    ap.scheme = generation_ <= params_.evenGenerations
                    ? msm::WeightingScheme::Even
                    : params_.weighting;
    ap.totalSeeds = params_.commandsPerGeneration;
    ap.seed = rng_.next();
    const auto plan =
        msm::planAdaptiveSampling(msmResult.counts,
                                  msmResult.observedStates(), ap);
    rec.seedsSpawned = plan.totalSeeds();
    history_.push_back(rec);

    for (std::size_t state = 0; state < plan.seedsPerState.size(); ++state) {
        for (int s = 0; s < plan.seedsPerState[state]; ++s) {
            md::SimulationConfig cfg = params_.simulation;
            cfg.seed = rng_.next();
            md::Simulation sim = md::Simulation::forGoModel(
                params_.model, msmResult.centers[state], cfg);
            sim.initializeVelocities();
            submitSegment(ctx, nextTrajectoryId_++, sim.checkpoint());
        }
    }
}

double MsmController::scoreBlindPrediction(
    const msm::MsmPipelineResult& msmResult) {
    // Highest-equilibrium-population cluster = predicted native state
    // (paper §3.2). Score: RMSD to native averaged over the center plus
    // up to four random member snapshots ("five random samples").
    const auto& model = msmResult.model;
    const auto& pi = model.stationaryDistribution();
    std::size_t bestActive = 0;
    for (std::size_t a = 1; a < pi.size(); ++a)
        if (pi[a] > pi[bestActive]) bestActive = a;
    const int micro = model.activeState(bestActive);

    RunningStats score;
    score.add(md::toAngstrom(
        md::rmsd(params_.model.native,
                 msmResult.centers[std::size_t(micro)])));

    // Collect member snapshot indices of this microstate.
    std::vector<std::pair<std::size_t, std::size_t>> members; // (traj, frame)
    std::size_t flat = 0;
    std::size_t trajIdx = 0;
    for (const auto& dt : msmResult.discrete) {
        for (std::size_t s = 0; s < dt.size(); ++s, ++flat) {
            if (dt[s] == micro)
                members.emplace_back(trajIdx, s);
        }
        ++trajIdx;
    }
    // Sample up to 4 members (deterministic).
    Rng sampler(rng_.next());
    for (int k = 0; k < 4 && !members.empty(); ++k) {
        const auto& pick = members[sampler.uniformInt(members.size())];
        // Recover the frame: snapshots were taken with the pipeline stride.
        std::size_t count = 0;
        for (const auto& [id, traj] : trajectories_) {
            if (traj.numFrames() == 0) continue;
            if (count == pick.first) {
                const std::size_t frameIdx =
                    pick.second * params_.pipeline.snapshotStride;
                if (frameIdx < traj.numFrames())
                    score.add(md::toAngstrom(md::rmsd(
                        params_.model.native,
                        traj.frame(frameIdx).positions)));
                break;
            }
            ++count;
        }
    }
    return score.mean();
}

std::string MsmController::handleClientCommand(ProjectContext& ctx,
                                               const std::string& command) {
    (void)ctx;
    const auto parts = split(trim(command), ' ');
    if (parts.size() == 3 && parts[0] == "set") {
        if (parts[1] == "clusters") {
            const int n = std::atoi(parts[2].c_str());
            if (n < 2) return "clusters must be >= 2";
            params_.pipeline.numClusters = std::size_t(n);
            return "clusters set to " + parts[2] +
                   " (takes effect at the next clustering step)";
        }
        if (parts[1] == "seeds") {
            const int n = std::atoi(parts[2].c_str());
            if (n < 1) return "seeds must be >= 1";
            params_.commandsPerGeneration = n;
            return "seeds per generation set to " + parts[2];
        }
        if (parts[1] == "weighting") {
            if (parts[2] == "even")
                params_.weighting = msm::WeightingScheme::Even;
            else if (parts[2] == "adaptive")
                params_.weighting = msm::WeightingScheme::Adaptive;
            else
                return "weighting must be 'even' or 'adaptive'";
            return "weighting set to " + parts[2];
        }
    }
    return "unknown command: " + command +
           " (try: set clusters <n> | set seeds <n> | set weighting "
           "even|adaptive)";
}

bool MsmController::isDone(const ProjectContext& ctx) const {
    (void)ctx;
    return done_;
}

std::string MsmController::statusReport(const ProjectContext& ctx) const {
    std::ostringstream oss;
    oss << "generation " << generation_ << "/" << params_.maxGenerations
        << ", " << trajectories_.size() << " trajectories, "
        << ctx.outstandingCommands() << " commands outstanding, min RMSD "
        << minRmsdAngstrom_ << " A";
    if (!history_.empty())
        oss << ", predicted-state RMSD "
            << history_.back().predictedRmsdAngstrom << " A";
    return oss.str();
}

} // namespace cop::core
