#include "core/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace cop::core {

namespace fs = std::filesystem;

namespace {

constexpr char kLogName[] = "wal.log";
constexpr char kSnapshotName[] = "snapshot.bin";
constexpr std::array<std::uint8_t, 4> kSnapMagic = {'C', 'P', 'W', 'S'};

std::vector<std::uint8_t> readWholeFile(const std::string& path) {
    std::vector<std::uint8_t> bytes;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return bytes;
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        bytes.resize(std::size_t(st.st_size));
        std::size_t done = 0;
        while (done < bytes.size()) {
            const ssize_t n =
                ::read(fd, bytes.data() + done, bytes.size() - done);
            if (n <= 0) {
                bytes.resize(done);
                break;
            }
            done += std::size_t(n);
        }
    }
    ::close(fd);
    return bytes;
}

} // namespace

Wal::Wal(WalConfig cfg) : cfg_(std::move(cfg)) {
    COP_REQUIRE(!cfg_.dir.empty(), "wal: directory required");
    std::error_code ec;
    fs::create_directories(cfg_.dir, ec);
    COP_IO_CHECK(!ec, "wal: cannot create dir " + cfg_.dir);
    openLog(/*truncate=*/false);
}

Wal::~Wal() {
    flush();
    // Tidy the preallocated zero tail off a cleanly closed log. A log
    // whose torn tail was never overwritten is left byte-for-byte intact.
    if (fd_ >= 0 && !tailDirty_ && preallocEnd_ > writeOff_)
        (void)::ftruncate(fd_, off_t(writeOff_));
    if (fd_ >= 0) ::close(fd_);
}

void Wal::openLog(bool truncate) {
    if (fd_ >= 0) ::close(fd_);
    const std::string path = (fs::path(cfg_.dir) / kLogName).string();
    const int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
    fd_ = ::open(path.c_str(), flags, 0600);
    COP_IO_CHECK(fd_ >= 0, "wal: cannot open " + path);
    writeOff_ = 0;
    preallocEnd_ = 0;
    tailDirty_ = false;
    if (truncate) return;
    // Find where the valid record prefix ends: that is where appends
    // resume. The scan is lenient — a corrupt log must still open so
    // replay() can report the corruption on its own terms — and
    // non-mutating, so replay() still sees any torn tail.
    const auto bytes = readWholeFile(path);
    std::size_t pos = 0;
    while (bytes.size() - pos >= 8) {
        std::uint32_t len = 0, crc = 0;
        std::memcpy(&len, bytes.data() + pos, 4);
        std::memcpy(&crc, bytes.data() + pos + 4, 4);
        if (len < 1 || len > cfg_.maxRecordBytes ||
            bytes.size() - pos - 8 < len)
            break;
        const auto body = std::span(bytes).subspan(pos + 8, len);
        if (util::crc32(body) != crc) break;
        pos += 8 + len;
    }
    writeOff_ = pos;
    tailDirty_ = pos < bytes.size();
}

void Wal::ensureCapacity(std::size_t bytes) {
    if (preallocEnd_ < writeOff_) preallocEnd_ = writeOff_;
    const std::size_t end = writeOff_ + bytes;
    if (end <= preallocEnd_ || cfg_.preallocBytes == 0) return;
    const std::size_t chunk = std::max(cfg_.preallocBytes, end - preallocEnd_);
    COP_IO_CHECK(::posix_fallocate(fd_, off_t(preallocEnd_),
                                   off_t(chunk)) == 0,
                 "wal: preallocation failed");
    preallocEnd_ += chunk;
}

void Wal::armFlush() {
    if (flushArmed_ || !cfg_.loop) return;
    flushArmed_ = true;
    // Zero delay by default: all records appended during one event tick
    // share a single write+fdatasync that fires before any message sent
    // this tick is delivered (link latency > 0).
    cfg_.loop->schedule(cfg_.flushDelay, [this] {
        flushArmed_ = false;
        flush();
    });
}

void Wal::append(WalRecordType type, std::span<const std::uint8_t> body) {
    const std::uint32_t len = std::uint32_t(body.size() + 1);
    const std::size_t at = buffer_.size();
    buffer_.resize(at + 8 + len);
    std::uint8_t* p = buffer_.data() + at;
    std::memcpy(p, &len, 4);
    p[8] = std::uint8_t(type);
    if (!body.empty()) std::memcpy(p + 9, body.data(), body.size());
    const std::uint32_t crc = util::crc32({p + 8, len});
    std::memcpy(p + 4, &crc, 4);
    ++stats_.records;
    ++stats_.recordsSinceSnapshot;
    stats_.bufferedBytes = buffer_.size();
    if (buffer_.size() >= cfg_.flushBytes || !cfg_.loop)
        flush();
    else
        armFlush();
}

void Wal::flush() {
    if (buffer_.empty()) return;
    if (tailDirty_) {
        // Appending over a torn tail is the moment it is really dropped;
        // anything left of it past the new records would read back as a
        // corrupt (not torn) log.
        COP_IO_CHECK(::ftruncate(fd_, off_t(writeOff_)) == 0,
                     "wal: cannot drop torn tail");
        tailDirty_ = false;
    }
    ensureCapacity(buffer_.size());
    std::size_t done = 0;
    while (done < buffer_.size()) {
        const ssize_t n =
            ::pwrite(fd_, buffer_.data() + done, buffer_.size() - done,
                     off_t(writeOff_ + done));
        COP_IO_CHECK(n > 0, "wal: write failed");
        done += std::size_t(n);
    }
    writeOff_ += buffer_.size();
    COP_IO_CHECK(::fdatasync(fd_) == 0, "wal: fdatasync failed");
    ++stats_.flushes;
    ++stats_.syncs;
    stats_.bytesWritten += buffer_.size();
    buffer_.clear();
    stats_.bufferedBytes = 0;
}

void Wal::writeSnapshot(std::span<const std::uint8_t> state) {
    flush();
    const fs::path dir(cfg_.dir);
    const std::string tmp = (dir / (std::string(kSnapshotName) + ".tmp"))
                                .string();
    const std::string dest = (dir / kSnapshotName).string();
    std::vector<std::uint8_t> out;
    out.reserve(state.size() + 16);
    out.insert(out.end(), kSnapMagic.begin(), kSnapMagic.end());
    const std::uint64_t len = state.size();
    const std::uint32_t crc = util::crc32(state);
    out.resize(16);
    std::memcpy(out.data() + 4, &len, 8);
    std::memcpy(out.data() + 12, &crc, 4);
    out.insert(out.end(), state.begin(), state.end());

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
    COP_IO_CHECK(fd >= 0, "wal: cannot open " + tmp);
    std::size_t done = 0;
    while (done < out.size()) {
        const ssize_t n =
            ::write(fd, out.data() + done, out.size() - done);
        if (n <= 0) {
            ::close(fd);
            COP_IO_CHECK(false, "wal: snapshot write failed");
        }
        done += std::size_t(n);
    }
    COP_IO_CHECK(::fdatasync(fd) == 0, "wal: snapshot sync failed");
    ::close(fd);
    COP_IO_CHECK(::rename(tmp.c_str(), dest.c_str()) == 0,
               "wal: snapshot rename failed");
    // The snapshot covers everything the log held; start a fresh log.
    openLog(/*truncate=*/true);
    ++stats_.snapshots;
    stats_.snapshotBytes = out.size();
    stats_.recordsSinceSnapshot = 0;
}

std::vector<std::uint8_t> Wal::loadSnapshot() {
    const std::string path = (fs::path(cfg_.dir) / kSnapshotName).string();
    const std::vector<std::uint8_t> bytes = readWholeFile(path);
    if (bytes.empty()) return {};
    return parseSnapshot(bytes, cfg_.maxRecordBytes);
}

std::vector<std::uint8_t>
Wal::parseSnapshot(std::span<const std::uint8_t> bytes,
                   std::size_t maxBytes) {
    COP_IO_CHECK(bytes.size() >= 16, "wal: snapshot truncated");
    COP_IO_CHECK(std::memcmp(bytes.data(), kSnapMagic.data(), 4) == 0, "wal: bad snapshot magic");
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + 4, 8);
    std::memcpy(&crc, bytes.data() + 12, 4);
    COP_IO_CHECK(len <= maxBytes, "wal: hostile snapshot length");
    COP_IO_CHECK(bytes.size() - 16 == len,
               "wal: snapshot length mismatch");
    const auto payload = bytes.subspan(16);
    COP_IO_CHECK(util::crc32(payload) == crc,
               "wal: snapshot CRC mismatch");
    return {payload.begin(), payload.end()};
}

std::size_t Wal::parseLog(std::span<const std::uint8_t> bytes,
                          const ReplayHandler& handler,
                          std::size_t maxRecordBytes,
                          std::size_t* tornTail) {
    std::size_t pos = 0;
    if (tornTail) *tornTail = 0;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < 8) { // truncated header = torn append
            if (tornTail) *tornTail = bytes.size() - pos;
            break;
        }
        std::uint32_t len = 0, crc = 0;
        std::memcpy(&len, bytes.data() + pos, 4);
        std::memcpy(&crc, bytes.data() + pos + 4, 4);
        // A zero length is the preallocated (never-written) tail of the
        // log, not a record: nothing past it was ever acknowledged.
        if (len == 0) break;
        COP_IO_CHECK(len <= maxRecordBytes,
                   "wal: hostile record length");
        if (bytes.size() - pos - 8 < len) { // truncated body = torn append
            if (tornTail) *tornTail = bytes.size() - pos;
            break;
        }
        const auto body = bytes.subspan(pos + 8, len);
        if (util::crc32(body) != crc) {
            // A CRC mismatch on the *final* record is a torn append (the
            // length landed, part of the body did not). Earlier in the
            // stream it cannot come from a crash: the log is append-only.
            COP_IO_CHECK(pos + 8 + len == bytes.size(),
                       "wal: mid-log CRC mismatch");
            if (tornTail) *tornTail = bytes.size() - pos;
            break;
        }
        COP_IO_CHECK(body[0] >= 1 && body[0] <= kWalRecordTypeMax,
                   "wal: unknown record type");
        if (handler)
            handler(WalRecordType(body[0]), body.subspan(1));
        pos += 8 + len;
    }
    return pos;
}

void Wal::replay(const ReplayHandler& handler) {
    const std::string path = (fs::path(cfg_.dir) / kLogName).string();
    const std::vector<std::uint8_t> bytes = readWholeFile(path);
    std::size_t torn = 0;
    std::size_t replayed = 0;
    parseLog(bytes,
             [&](WalRecordType t, std::span<const std::uint8_t> body) {
                 ++replayed;
                 handler(t, body);
             },
             cfg_.maxRecordBytes, &torn);
    stats_.replayedRecords += replayed;
    stats_.corruptTailBytes += torn;
}

} // namespace cop::core
