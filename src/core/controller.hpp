#pragma once

/// \file controller.hpp
/// Plugin-based project control (paper §2.1): controllers are event
/// handlers installed per project. "All knowledge about how to execute a
/// project and how to interpret the resulting command output is contained
/// in these user-installable modules."

#include <cstdint>
#include <string>

#include "core/command.hpp"
#include "net/event_loop.hpp"

namespace cop::core {

/// Interface the framework hands to controllers for interacting with their
/// project: submitting new commands and reading the clock.
class ProjectContext {
public:
    virtual ~ProjectContext() = default;

    virtual ProjectId projectId() const = 0;
    virtual net::SimTime now() const = 0;

    /// Queues a command. The framework fills in id, projectId and
    /// projectServer; returns the assigned id. Bypasses admission control
    /// (a controller reacting to a finished command must never deadlock
    /// its own project on its quota).
    virtual CommandId submitCommand(CommandSpec spec) = 0;

    /// Outcome of an admission-checked submission.
    struct SubmitResult {
        CommandId id = 0;        ///< 0 when rejected
        bool admitted = true;
        double retryAfter = 0.0; ///< suggested backoff when !admitted
    };

    /// Admission-checked variant of submitCommand: a submission over the
    /// project's pending-depth or byte quota is rejected with a suggested
    /// retry-after instead of being queued. Default forwards to
    /// submitCommand (single-tenant contexts have no quotas).
    virtual SubmitResult trySubmitCommand(CommandSpec spec) {
        return SubmitResult{submitCommand(std::move(spec)), true, 0.0};
    }

    /// Number of commands of this project not yet finished.
    virtual std::size_t outstandingCommands() const = 0;
};

/// Event-handler plugin controlling one project (paper §2.1). Controllers
/// are called when the project starts, when a command finishes or fails,
/// and can declare the project done (e.g. when a standard error target is
/// reached).
class Controller {
public:
    virtual ~Controller() = default;

    virtual void onProjectStart(ProjectContext& ctx) = 0;
    virtual void onCommandFinished(ProjectContext& ctx,
                                   const CommandResult& result) = 0;
    /// Default: resubmit nothing; concrete controllers may respawn.
    virtual void onCommandFailed(ProjectContext& ctx,
                                 const CommandSpec& spec);
    virtual bool isDone(const ProjectContext& ctx) const = 0;

    /// Human-readable progress line for the monitoring client.
    virtual std::string statusReport(const ProjectContext& ctx) const;

    /// Handles a control command from a client (paper §3.2: "future
    /// versions will allow the values to be changed dynamically"). The
    /// default accepts nothing. Returns a human-readable reply.
    virtual std::string handleClientCommand(ProjectContext& ctx,
                                            const std::string& command);
};

} // namespace cop::core
