#pragma once

/// \file executable.hpp
/// Worker-side 'executables' (paper §2.3): descriptions of how to execute
/// specific command types on this worker, registered as handlers. This is
/// the extension point where the Gromacs-equivalent MD engine, the
/// free-energy sampler, and the DES duration model plug in.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/command.hpp"

namespace cop::core {

/// Outcome of executing one command on a worker.
struct Execution {
    CommandResult result;
    /// Virtual-time duration of the run on the assigned cores.
    double simSeconds = 0.0;
    /// Mid-run checkpoints to stream back to the server (pairs of
    /// (fraction of run completed, checkpoint blob)); enables transparent
    /// continuation when the worker later dies.
    std::vector<std::pair<double, std::vector<std::uint8_t>>> checkpoints;
};

using ExecutableHandler =
    std::function<Execution(const CommandSpec&, int cores)>;

class ExecutableRegistry {
public:
    void add(const std::string& name, ExecutableHandler handler);
    bool has(const std::string& name) const;
    std::vector<std::string> names() const;

    /// Runs the matching handler; throws InvalidArgument for unknown
    /// executables.
    Execution run(const CommandSpec& cmd, int cores) const;

private:
    std::map<std::string, ExecutableHandler> handlers_;
};

} // namespace cop::core
