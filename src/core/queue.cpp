#include "core/queue.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace cop::core {

void CommandQueue::push(CommandSpec cmd) {
    COP_REQUIRE(cmd.id != 0, "command needs an id");
    COP_REQUIRE(cmd.preferredCores >= 1, "command needs >= 1 core");
    if (!knownIds_.insert(cmd.id).second) {
        ++stats_.duplicatePushesRejected;
        COP_REQUIRE(false, "duplicate command id " + std::to_string(cmd.id) +
                               " (already pending or in flight)");
    }
    ++stats_.pushes;
    insertPending(std::move(cmd), nextSeq_++);
}

void CommandQueue::insertPending(CommandSpec cmd, std::int64_t seq) {
    stashInput(cmd);
    auto& bucket = buckets_[cmd.executable];
    bucket.byCores.insert(CoreKey{cmd.priority, cmd.preferredCores, seq});
    pendingBytes_ += logicalSize(cmd);
    bucket.byKey.emplace(Key{cmd.priority, seq}, std::move(cmd));
    ++pendingCount_;
}

void CommandQueue::setVault(BlobVault* vault) {
    COP_REQUIRE(knownIds_.empty(),
                "vault must be attached before the first push");
    vault_ = vault;
}

void CommandQueue::stashInput(CommandSpec& cmd) {
    if (vault_ == nullptr) return;
    if (cmd.input.size() == 0) return; // already stashed or genuinely empty
    vault_->stash(cmd.id, std::move(cmd.input));
    cmd.input = SharedBytes{};
}

std::size_t CommandQueue::logicalSize(const CommandSpec& spec) const {
    if (vault_ != nullptr && spec.input.size() == 0)
        return vault_->sizeOf(spec.id);
    return spec.input.size();
}

CommandSpec CommandQueue::rehydrate(CommandSpec spec) const {
    if (vault_ != nullptr && spec.input.size() == 0 &&
        vault_->holds(spec.id))
        spec.input = vault_->fetch(spec.id);
    return spec;
}

bool CommandQueue::hasWorkFor(
    const std::vector<std::string>& executables) const {
    for (const auto& exe : executables) {
        ++stats_.hasWorkProbes;
        auto it = buckets_.find(exe);
        if (it != buckets_.end() && !it->second.byKey.empty()) return true;
    }
    return false;
}

CommandSpec CommandQueue::take(Bucket& bucket,
                               std::map<Key, CommandSpec>::iterator it,
                               net::NodeId worker) {
    CommandSpec spec = std::move(it->second);
    bucket.byCores.erase(
        CoreKey{it->first.priority, spec.preferredCores, it->first.seq});
    bucket.byKey.erase(it);
    --pendingCount_;
    pendingBytes_ -= logicalSize(spec);
    inFlight_[spec.id] = InFlight{spec, worker};
    // The copy shipped to the worker carries the real payload; the
    // in-flight table keeps it parked in the vault.
    return rehydrate(std::move(spec));
}

std::vector<CommandSpec> CommandQueue::claim(
    const std::vector<std::string>& executables, int maxCores,
    net::NodeId worker, ClaimPolicy policy) {
    ++stats_.claims;
    std::vector<CommandSpec> claimed;
    int coresLeft = maxCores;

    // Offered buckets, deduplicated (a repeated name must not yield two
    // cursors over the same bucket).
    std::vector<Bucket*> offered;
    for (const auto& exe : executables) {
        auto it = buckets_.find(exe);
        if (it == buckets_.end() || it->second.byKey.empty()) continue;
        if (std::find(offered.begin(), offered.end(), &it->second) ==
            offered.end())
            offered.push_back(&it->second);
    }

    if (policy == ClaimPolicy::FirstFit) {
        // K-way merge of the offered buckets in global (priority, seq)
        // order: exactly the runnable subsequence the legacy full-queue
        // scan visited, without ever touching non-matching work.
        struct Cursor {
            Bucket* bucket;
            std::map<Key, CommandSpec>::iterator it;
        };
        std::vector<Cursor> cursors;
        cursors.reserve(offered.size());
        for (Bucket* b : offered)
            cursors.push_back(Cursor{b, b->byKey.begin()});
        while (coresLeft > 0) {
            Cursor* best = nullptr;
            for (auto& c : cursors) {
                if (c.it == c.bucket->byKey.end()) continue;
                if (best == nullptr || c.it->first < best->it->first)
                    best = &c;
            }
            if (best == nullptr) break;
            ++stats_.claimScanSteps;
            if (best->it->second.preferredCores <= coresLeft) {
                coresLeft -= best->it->second.preferredCores;
                auto next = std::next(best->it);
                claimed.push_back(take(*best->bucket, best->it, worker));
                best->it = next;
            } else {
                ++best->it;
            }
        }
    } else {
        // LargestFit: per step, the globally best CoreKey (priority desc,
        // cores desc, seq asc) whose core request fits. Within a bucket,
        // walk priority levels via lower_bound until a level has a
        // fitting entry.
        while (coresLeft > 0) {
            Bucket* bestBucket = nullptr;
            std::set<CoreKey>::iterator bestIt;
            for (Bucket* b : offered) {
                auto it = b->byCores.begin();
                while (it != b->byCores.end()) {
                    ++stats_.claimScanSteps;
                    if (it->cores <= coresLeft) break;
                    // Everything at this priority level is too big: jump
                    // to the first fitting entry at this level or the top
                    // of the next level.
                    it = b->byCores.lower_bound(
                        CoreKey{it->priority, coresLeft,
                                std::numeric_limits<std::int64_t>::min()});
                }
                if (it == b->byCores.end()) continue;
                if (bestBucket == nullptr || *it < *bestIt) {
                    bestBucket = b;
                    bestIt = it;
                }
            }
            if (bestBucket == nullptr) break;
            auto keyIt = bestBucket->byKey.find(
                Key{bestIt->priority, bestIt->seq});
            coresLeft -= bestIt->cores;
            claimed.push_back(take(*bestBucket, keyIt, worker));
        }
    }
    stats_.commandsClaimed += claimed.size();
    return claimed;
}

std::optional<CommandSpec> CommandQueue::complete(CommandId id) {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) return std::nullopt;
    CommandSpec spec = rehydrate(std::move(it->second.spec));
    inFlight_.erase(it);
    knownIds_.erase(id);
    if (vault_ != nullptr) vault_->drop(id);
    return spec;
}

void CommandQueue::requeueInFlight(InFlight&& flight) {
    ++stats_.commandsRequeued;
    // Decreasing head sequence: each requeue lands ahead of everything
    // else at its priority level, including earlier requeues — matching
    // the legacy insert-at-head-of-level scan.
    insertPending(std::move(flight.spec), headSeq_--);
}

std::vector<CommandId> CommandQueue::requeueWorker(net::NodeId worker) {
    std::vector<CommandId> requeued;
    for (auto it = inFlight_.begin(); it != inFlight_.end();) {
        if (it->second.worker == worker) {
            requeued.push_back(it->first);
            requeueInFlight(std::move(it->second));
            it = inFlight_.erase(it);
        } else {
            ++it;
        }
    }
    return requeued;
}

bool CommandQueue::requeueCommand(CommandId id) {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) return false;
    requeueInFlight(std::move(it->second));
    inFlight_.erase(it);
    return true;
}

void CommandQueue::updateCheckpoint(CommandId id, SharedBytes checkpoint) {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) {
        ++stats_.checkpointsUnknownId;
        COP_LOG_DEBUG("queue")
            << "dropping checkpoint for unknown command " << id << " ("
            << checkpoint.size() << " bytes): not in flight";
        return;
    }
    ++stats_.checkpointUpdates;
    stats_.checkpointBytesShared += checkpoint.size();
    if (vault_ != nullptr) {
        vault_->stash(id, std::move(checkpoint));
        it->second.spec.input = SharedBytes{};
    } else {
        it->second.spec.input = std::move(checkpoint);
    }
}

void CommandQueue::updateCheckpoint(
    CommandId id, const std::vector<std::uint8_t>& checkpoint) {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) {
        ++stats_.checkpointsUnknownId;
        COP_LOG_DEBUG("queue")
            << "dropping checkpoint for unknown command " << id << " ("
            << checkpoint.size() << " bytes): not in flight";
        return;
    }
    ++stats_.checkpointUpdates;
    ++stats_.checkpointDeepCopies;
    if (vault_ != nullptr) {
        vault_->stash(id, SharedBytes(checkpoint));
        it->second.spec.input = SharedBytes{};
    } else {
        it->second.spec.input = SharedBytes(checkpoint);
    }
}

std::optional<net::NodeId> CommandQueue::holderOf(CommandId id) const {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) return std::nullopt;
    return it->second.worker;
}

void CommandQueue::forEachPending(
    const std::function<void(const CommandSpec&)>& fn) const {
    for (const auto& [exe, bucket] : buckets_)
        for (const auto& [key, spec] : bucket.byKey) fn(spec);
}

void CommandQueue::forEachInFlight(
    const std::function<void(const CommandSpec&, net::NodeId)>& fn) const {
    for (const auto& [id, flight] : inFlight_)
        fn(flight.spec, flight.worker);
}

void CommandQueue::serialize(BinaryWriter& w) const {
    w.write(std::int64_t(nextSeq_));
    w.write(std::int64_t(headSeq_));
    // Pending entries with their ordering keys: (seq, spec). The vault
    // payloads travel inline so the snapshot is self-contained.
    w.write(std::uint64_t(pendingCount_));
    for (const auto& [exe, bucket] : buckets_)
        for (const auto& [key, spec] : bucket.byKey) {
            w.write(std::int64_t(key.seq));
            rehydrate(spec).serialize(w);
        }
    w.write(std::uint64_t(inFlight_.size()));
    for (const auto& [id, flight] : inFlight_) {
        w.write(std::int32_t(flight.worker));
        rehydrate(flight.spec).serialize(w);
    }
    // Hot-path counters ride along so metrics stay continuous across a
    // recovery.
    w.write(stats_.pushes);
    w.write(stats_.duplicatePushesRejected);
    w.write(stats_.claims);
    w.write(stats_.commandsClaimed);
    w.write(stats_.commandsRequeued);
    w.write(stats_.claimScanSteps);
    w.write(stats_.hasWorkProbes);
    w.write(stats_.checkpointUpdates);
    w.write(stats_.checkpointBytesShared);
    w.write(stats_.checkpointDeepCopies);
    w.write(stats_.checkpointsUnknownId);
}

void CommandQueue::restore(BinaryReader& r) {
    COP_REQUIRE(knownIds_.empty(), "restore into a non-empty queue");
    nextSeq_ = r.read<std::int64_t>();
    headSeq_ = r.read<std::int64_t>();
    const std::uint64_t pending = r.readCount(16);
    for (std::uint64_t i = 0; i < pending; ++i) {
        const auto seq = r.read<std::int64_t>();
        CommandSpec spec = CommandSpec::deserialize(r);
        COP_IO_CHECK(spec.id != 0 && spec.preferredCores >= 1,
                     "queue restore: invalid pending spec");
        COP_IO_CHECK(knownIds_.insert(spec.id).second,
                     "queue restore: duplicate pending id");
        insertPending(std::move(spec), seq);
    }
    const std::uint64_t flights = r.readCount(16);
    for (std::uint64_t i = 0; i < flights; ++i) {
        const auto worker = net::NodeId(r.read<std::int32_t>());
        CommandSpec spec = CommandSpec::deserialize(r);
        COP_IO_CHECK(spec.id != 0, "queue restore: invalid in-flight spec");
        COP_IO_CHECK(knownIds_.insert(spec.id).second,
                     "queue restore: duplicate in-flight id");
        stashInput(spec);
        inFlight_[spec.id] = InFlight{std::move(spec), worker};
    }
    stats_.pushes = r.read<std::uint64_t>();
    stats_.duplicatePushesRejected = r.read<std::uint64_t>();
    stats_.claims = r.read<std::uint64_t>();
    stats_.commandsClaimed = r.read<std::uint64_t>();
    stats_.commandsRequeued = r.read<std::uint64_t>();
    stats_.claimScanSteps = r.read<std::uint64_t>();
    stats_.hasWorkProbes = r.read<std::uint64_t>();
    stats_.checkpointUpdates = r.read<std::uint64_t>();
    stats_.checkpointBytesShared = r.read<std::uint64_t>();
    stats_.checkpointDeepCopies = r.read<std::uint64_t>();
    stats_.checkpointsUnknownId = r.read<std::uint64_t>();
}

} // namespace cop::core
