#pragma once

/// \file worker.hpp
/// A Copernicus worker (paper §2.3): presents its platform, core count and
/// installed executables to its closest server, receives a workload,
/// executes the commands (really, via the MD engine, or virtually, via a
/// duration model), streams checkpoints and heartbeats, returns output,
/// and asks for more work. Supports failure injection for the §2.3
/// transparent-continuation experiments.
///
/// All messaging goes through a typed wire::Endpoint. Polling after
/// NoWorkAvailable uses capped exponential backoff with seeded jitter;
/// requests whose reliable delivery ultimately fails are retried after a
/// backoff; and if its server becomes unreachable the worker fails over
/// to the next configured fallback server.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/envelope.hpp"
#include "core/executable.hpp"
#include "core/wire.hpp"
#include "net/backoff.hpp"
#include "net/overlay.hpp"
#include "util/random.hpp"

namespace cop::core {

struct WorkerConfig {
    std::string platform = "smp"; ///< e.g. "OpenMPI", "SMP" (paper §2.3)
    int cores = 1;
    double heartbeatInterval = 120.0; ///< seconds (paper default)
    /// Wait after NoWorkAvailable: capped exponential backoff with seeded
    /// jitter so an idle fleet does not poll in lockstep.
    net::BackoffPolicy pollBackoff{30.0, 2.0, 480.0, 0.25};
    /// Ack/retransmit policy for reliable sends.
    wire::RetryPolicy rpc;
    /// Transmit coalescing + ack piggybacking (enabled by default).
    wire::BatchPolicy batch;
};

struct WorkerStats {
    std::uint64_t commandsCompleted = 0;
    std::uint64_t commandsFailed = 0;
    std::uint64_t workloadRequestsSent = 0;
    std::uint64_t heartbeatsSent = 0;
    std::uint64_t checkpointsSent = 0;
    std::uint64_t pollRetries = 0;      ///< NoWorkAvailable backoffs taken
    /// NoWork answers carrying a server retry-after hint (park-queue or
    /// admission backpressure) that stretched our poll delay.
    std::uint64_t backpressureDeferrals = 0;
    std::uint64_t serverFailovers = 0;  ///< switched to a fallback server
    std::uint64_t duplicateAssignmentsDropped = 0;
    double busySeconds = 0.0; ///< virtual seconds of command execution
};

class Worker {
public:
    Worker(net::OverlayNetwork& network, std::string name,
           net::KeyPair keys, WorkerConfig config,
           ExecutableRegistry registry);

    net::Node& node() { return node_; }
    net::NodeId id() const { return node_.id(); }
    const WorkerConfig& config() const { return config_; }
    const WorkerStats& stats() const { return stats_; }
    /// Wire-layer counters (retransmits, acks, duplicates dropped).
    const wire::EndpointStats& wireStats() const { return endpoint_.stats(); }
    /// The worker's typed endpoint (benches/tests attach observers here).
    wire::Endpoint& endpoint() { return endpoint_; }

    /// Sets the closest server (must already be connected in the overlay)
    /// and sends the first announcement/work request.
    void start(net::NodeId closestServer);

    /// Adds a server this worker switches to when reliable sends to the
    /// current one keep failing (must be trusted + connected separately).
    void addFallbackServer(net::NodeId server);

    /// Stops requesting new work after the current commands complete.
    void drain() { draining_ = true; }

    /// Observer called with (sim-seconds between sending a workload
    /// request and receiving its assignment) for every assignment that
    /// answers an open request. Benches use it for claim-latency
    /// percentiles.
    void onAssignLatency(std::function<void(double)> observer) {
        assignLatencyObserver_ = std::move(observer);
    }

    /// Injects a crash `delay` seconds from now: the worker stops dead —
    /// no more heartbeats, checkpoints, results, acks or retransmits.
    void failAfter(double delay);

    bool alive() const { return alive_; }
    std::size_t runningCommands() const { return running_.size(); }
    net::NodeId currentServer() const { return server_; }

private:
    void handleEnvelope(const wire::Envelope& env);
    void handleAssignment(const WorkloadAssignPayload& assign);
    void handleDeliveryFailure(const net::Message& failed);
    void requestWork();
    void sendHeartbeat();
    void ensureHeartbeatScheduled();

    struct Running {
        CommandSpec spec;
    };

    net::OverlayNetwork* network_;
    net::Node node_;
    wire::Endpoint endpoint_;
    WorkerConfig config_;
    ExecutableRegistry registry_;
    Rng rng_;
    net::NodeId server_ = net::kInvalidNode;
    std::vector<net::NodeId> fallbackServers_;
    std::map<CommandId, Running> running_;
    WorkerStats stats_;
    std::function<void(double)> assignLatencyObserver_;
    double requestSentAt_ = 0.0; ///< for the assign-latency observer
    int pollAttempt_ = 0;
    bool alive_ = true;
    bool draining_ = false;
    bool heartbeatScheduled_ = false;
    bool requestPending_ = false;
};

} // namespace cop::core
