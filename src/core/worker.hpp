#pragma once

/// \file worker.hpp
/// A Copernicus worker (paper §2.3): presents its platform, core count and
/// installed executables to its closest server, receives a workload,
/// executes the commands (really, via the MD engine, or virtually, via a
/// duration model), streams checkpoints and heartbeats, returns output,
/// and asks for more work. Supports failure injection for the §2.3
/// transparent-continuation experiments.

#include <map>
#include <string>
#include <vector>

#include "core/executable.hpp"
#include "core/wire.hpp"
#include "net/overlay.hpp"

namespace cop::core {

struct WorkerConfig {
    std::string platform = "smp"; ///< e.g. "OpenMPI", "SMP" (paper §2.3)
    int cores = 1;
    double heartbeatInterval = 120.0; ///< seconds (paper default)
    double retryDelay = 30.0;         ///< wait after NoWorkAvailable
};

struct WorkerStats {
    std::uint64_t commandsCompleted = 0;
    std::uint64_t commandsFailed = 0;
    std::uint64_t workloadRequestsSent = 0;
    std::uint64_t heartbeatsSent = 0;
    std::uint64_t checkpointsSent = 0;
    double busySeconds = 0.0; ///< virtual seconds of command execution
};

class Worker {
public:
    Worker(net::OverlayNetwork& network, std::string name,
           net::KeyPair keys, WorkerConfig config,
           ExecutableRegistry registry);

    net::Node& node() { return node_; }
    net::NodeId id() const { return node_.id(); }
    const WorkerConfig& config() const { return config_; }
    const WorkerStats& stats() const { return stats_; }

    /// Sets the closest server (must already be connected in the overlay)
    /// and sends the first announcement/work request.
    void start(net::NodeId closestServer);

    /// Stops requesting new work after the current commands complete.
    void drain() { draining_ = true; }

    /// Injects a crash `delay` seconds from now: the worker stops dead —
    /// no more heartbeats, checkpoints or results.
    void failAfter(double delay);

    bool alive() const { return alive_; }
    std::size_t runningCommands() const { return running_.size(); }

private:
    void handleMessage(const net::Message& msg);
    void handleAssignment(const net::Message& msg);
    void requestWork();
    void sendHeartbeat();
    void ensureHeartbeatScheduled();
    void sendMessage(net::MessageType type, std::vector<std::uint8_t> payload,
                     std::uint64_t payloadKey = 0);

    struct Running {
        CommandSpec spec;
    };

    net::OverlayNetwork* network_;
    net::Node node_;
    WorkerConfig config_;
    ExecutableRegistry registry_;
    net::NodeId server_ = net::kInvalidNode;
    std::map<CommandId, Running> running_;
    WorkerStats stats_;
    bool alive_ = true;
    bool draining_ = false;
    bool heartbeatScheduled_ = false;
    bool requestPending_ = false;
};

} // namespace cop::core
