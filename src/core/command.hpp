#pragma once

/// \file command.hpp
/// The unit of work in Copernicus (paper §2): a single (possibly massively
/// parallel) simulation segment. Commands carry their full input payload
/// (checkpoint or starting structure) so any worker on any cluster can run
/// them; results carry the produced trajectory segment plus the final
/// checkpoint so the next segment can continue bit-exactly elsewhere.

#include <cstdint>
#include <string>
#include <vector>

#include "core/shared_bytes.hpp"
#include "net/message.hpp"
#include "util/serialize.hpp"

namespace cop::core {

using CommandId = std::uint64_t;
using ProjectId = std::uint64_t;

struct CommandSpec {
    CommandId id = 0;
    ProjectId projectId = 0;
    net::NodeId projectServer = net::kInvalidNode;
    std::string executable;   ///< e.g. "mdrun", "fe_sample"
    std::int64_t steps = 0;   ///< segment length in integrator steps
    int preferredCores = 1;   ///< cores this command wants (paper §2.3)
    int priority = 0;         ///< higher runs first (paper §2.2: encoded
                              ///< routing priority = run priority)
    int trajectoryId = -1;    ///< application-level stream this extends
    int generation = 0;       ///< MSM generation that spawned it
    SharedBytes input; ///< checkpoint / starting structure (shared, COW)

    void serialize(BinaryWriter& w) const;
    static CommandSpec deserialize(BinaryReader& r);
    /// Exact wire size of serialize()'s output, for reserve() prehints.
    std::size_t encodedSize() const;
};

struct CommandResult {
    CommandId commandId = 0;
    ProjectId projectId = 0;
    int trajectoryId = -1;
    int generation = 0;
    bool success = false;
    std::string error;
    std::vector<std::uint8_t> output; ///< trajectory segment + checkpoint
    double simSeconds = 0.0;          ///< execution duration (virtual time)

    void serialize(BinaryWriter& w) const;
    static CommandResult deserialize(BinaryReader& r);
    /// Exact wire size of serialize()'s output, for reserve() prehints.
    std::size_t encodedSize() const;
};

} // namespace cop::core
