#include "core/segment_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/codec.hpp"
#include "util/error.hpp"

namespace cop::core {

namespace fs = std::filesystem;

SegmentStore::SegmentStore(StoreConfig cfg) : cfg_(std::move(cfg)) {}

SegmentStore::~SegmentStore() {
    for (Segment& seg : segments_) {
        if (seg.fd >= 0) ::close(seg.fd);
        if (!seg.path.empty()) ::unlink(seg.path.c_str());
    }
}

void SegmentStore::ensureDir() {
    if (dirReady_) return;
    if (cfg_.dir.empty()) {
        const fs::path base = fs::temp_directory_path() /
                              ("cop_store_" + std::to_string(::getpid()) +
                               "_" + std::to_string(std::uintptr_t(this)));
        cfg_.dir = base.string();
    }
    std::error_code ec;
    fs::create_directories(cfg_.dir, ec);
    COP_IO_CHECK(!ec,
               "segment store: cannot create spill dir " + cfg_.dir);
    dirReady_ = true;
}

SegmentStore::Segment& SegmentStore::activeSegment() {
    if (!segments_.empty() && segments_.back().open &&
        segments_.back().bytes < cfg_.maxSegmentBytes)
        return segments_.back();
    if (!segments_.empty() && segments_.back().open)
        segments_.back().open = false; // sealed, fd kept for reads
    ensureDir();
    Segment seg;
    seg.path = (fs::path(cfg_.dir) /
                ("seg_" + std::to_string(segments_.size()) + ".cpz"))
                   .string();
    seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    COP_IO_CHECK(seg.fd >= 0,
               "segment store: cannot open " + seg.path);
    seg.open = true;
    segments_.push_back(seg);
    ++stats_.segmentsCreated;
    return segments_.back();
}

SegmentStore::SegmentRef
SegmentStore::appendFrame(const std::vector<std::uint8_t>& frame,
                          std::uint32_t rawLen) {
    Segment& seg = activeSegment();
    SegmentRef ref;
    ref.segment = std::uint64_t(&seg - segments_.data());
    ref.offset = seg.bytes;
    ref.frameLen = std::uint32_t(frame.size());
    ref.rawLen = rawLen;
    std::size_t done = 0;
    while (done < frame.size()) {
        const ssize_t n =
            ::pwrite(seg.fd, frame.data() + done, frame.size() - done,
                     off_t(seg.bytes + done));
        COP_IO_CHECK(n > 0, "segment store: write failed");
        done += std::size_t(n);
    }
    seg.bytes += frame.size();
    seg.liveBlobs += 1;
    seg.liveBytes += frame.size();
    return ref;
}

std::vector<std::uint8_t> SegmentStore::readFrame(const SegmentRef& ref) {
    COP_IO_CHECK(ref.segment < segments_.size(),
               "segment store: dangling segment ref");
    const Segment& seg = segments_[ref.segment];
    COP_IO_CHECK(seg.fd >= 0 &&
                   ref.offset + ref.frameLen <= seg.bytes, "segment store: frame ref outside segment");
    // Transient mmap window: page-align the offset, decode, unmap. The
    // pages join the resident set only for the duration of the fetch, so
    // RSS stays bounded by the RAM tier regardless of cold-tier size.
    const std::size_t page = std::size_t(::sysconf(_SC_PAGESIZE));
    const std::uint64_t mapStart = ref.offset & ~(std::uint64_t(page) - 1);
    const std::size_t mapLen =
        std::size_t(ref.offset - mapStart) + ref.frameLen;
    void* map = ::mmap(nullptr, mapLen, PROT_READ, MAP_PRIVATE, seg.fd,
                       off_t(mapStart));
    COP_IO_CHECK(map != MAP_FAILED, "segment store: mmap failed");
    const auto* bytes = static_cast<const std::uint8_t*>(map) +
                        (ref.offset - mapStart);
    std::vector<std::uint8_t> raw;
    try {
        raw = util::decode({bytes, ref.frameLen}, cfg_.maxBlobBytes);
    } catch (...) {
        ::munmap(map, mapLen);
        throw;
    }
    ::munmap(map, mapLen);
    COP_IO_CHECK(raw.size() == ref.rawLen,
               "segment store: frame raw size mismatch");
    return raw;
}

void SegmentStore::releaseCold(Entry& e) {
    if (!e.cold) return;
    Segment& seg = segments_[e.cold->segment];
    seg.liveBlobs -= 1;
    seg.liveBytes -= e.cold->frameLen;
    stats_.coldBytesLive -= e.cold->frameLen;
    if (seg.liveBlobs == 0 && !seg.open) {
        if (seg.fd >= 0) ::close(seg.fd);
        ::unlink(seg.path.c_str());
        seg.fd = -1;
        seg.path.clear();
        ++stats_.segmentsUnlinked;
    }
    e.cold.reset();
}

void SegmentStore::touch(Entry& e, std::uint64_t key) {
    if (e.hotValid && e.lruPos != lru_.begin())
        lru_.splice(lru_.begin(), lru_, e.lruPos);
    else if (!e.hotValid) {
        lru_.push_front(key);
        e.lruPos = lru_.begin();
        e.hotValid = true;
    }
}

void SegmentStore::dropHot(std::uint64_t key, Entry& e) {
    (void)key;
    if (!e.hotValid) return;
    lru_.erase(e.lruPos);
    ramBytes_ -= e.hot.size();
    e.hot = SharedBytes{};
    e.hotValid = false;
}

void SegmentStore::spill(std::uint64_t key, Entry& e) {
    if (!e.cold) {
        const util::EncodeResult enc =
            cfg_.compress
                ? util::encode(e.hot)
                : util::encode(e.hot, util::CodecFilter::None, false);
        e.cold = appendFrame(enc.frame, std::uint32_t(e.hot.size()));
        ++stats_.spills;
        if (e.everSpilled) ++stats_.recompressions;
        e.everSpilled = true;
        stats_.spilledRawBytes += e.hot.size();
        stats_.spilledCompressedBytes += enc.frame.size();
        stats_.coldBytesLive += enc.frame.size();
    }
    ++stats_.evictions;
    dropHot(key, e);
}

void SegmentStore::enforceCap() {
    if (cfg_.ramBytes == 0) return;
    while (ramBytes_ > cfg_.ramBytes && !lru_.empty()) {
        const std::uint64_t victim = lru_.back();
        spill(victim, entries_.at(victim));
    }
}

void SegmentStore::put(std::uint64_t key, SharedBytes blob) {
    ++stats_.puts;
    Entry& e = entries_[key];
    if (e.hotValid) ramBytes_ -= e.hot.size();
    releaseCold(e); // a replace invalidates any cold copy
    e.rawLen = std::uint32_t(blob.size());
    e.hot = std::move(blob);
    ramBytes_ += e.hot.size();
    touch(e, key);
    enforceCap();
}

std::optional<SharedBytes> SegmentStore::get(std::uint64_t key) {
    ++stats_.gets;
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    Entry& e = it->second;
    if (e.hotValid) {
        ++stats_.hits;
        touch(e, key);
        return e.hot;
    }
    ++stats_.misses;
    SharedBytes blob{readFrame(*e.cold)};
    // Promote: the cold frame stays valid (clean), so a later eviction
    // drops the hot copy without re-encoding.
    e.hot = blob;
    ramBytes_ += e.hot.size();
    touch(e, key);
    enforceCap();
    return blob;
}

bool SegmentStore::erase(std::uint64_t key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    ++stats_.erases;
    dropHot(key, it->second);
    releaseCold(it->second);
    entries_.erase(it);
    return true;
}

bool SegmentStore::contains(std::uint64_t key) const {
    return entries_.count(key) != 0;
}

std::size_t SegmentStore::sizeOf(std::uint64_t key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.rawLen;
}

void SegmentStore::clear() {
    entries_.clear();
    lru_.clear();
    ramBytes_ = 0;
    stats_.coldBytesLive = 0;
    for (Segment& seg : segments_) {
        if (seg.fd >= 0) ::close(seg.fd);
        if (!seg.path.empty()) {
            ::unlink(seg.path.c_str());
            ++stats_.segmentsUnlinked;
        }
    }
    segments_.clear();
}

const StoreStats& SegmentStore::stats() const {
    stats_.ramBytesUsed = ramBytes_;
    stats_.entries = entries_.size();
    return stats_;
}

} // namespace cop::core
