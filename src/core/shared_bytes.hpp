#pragma once

/// \file shared_bytes.hpp
/// Copy-on-write byte payload shared across the scheduling data plane.
/// Command inputs and checkpoints travel as one immutable heap buffer
/// referenced by CommandSpec, the in-flight table, the lease-side
/// checkpoint cache and outgoing WorkerFailed payloads: handing a blob
/// from one holder to another bumps a refcount instead of duplicating
/// megabyte-scale checkpoint vectors. Buffers are never mutated in place
/// — writers always build a fresh vector and wrap it — so sharing is
/// safe without synchronization in the single-threaded event loop.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

namespace cop::core {

class SharedBytes {
public:
    SharedBytes() = default;

    /// Literal payloads (tests, small fixed inputs).
    SharedBytes(std::initializer_list<std::uint8_t> bytes)
        : SharedBytes(std::vector<std::uint8_t>(bytes)) {}

    /// Adopts an rvalue buffer without copying its bytes.
    SharedBytes(std::vector<std::uint8_t>&& bytes)
        : data_(bytes.empty()
                    ? nullptr
                    : std::make_shared<const std::vector<std::uint8_t>>(
                          std::move(bytes))) {}

    /// Deep-copies an lvalue buffer. Kept deliberately explicit-looking at
    /// call sites (pass std::move or a temporary to share instead); the
    /// scheduler counts these via SchedulerStats::checkpointDeepCopies.
    SharedBytes(const std::vector<std::uint8_t>& bytes)
        : data_(bytes.empty()
                    ? nullptr
                    : std::make_shared<const std::vector<std::uint8_t>>(
                          bytes)) {}

    const std::vector<std::uint8_t>& bytes() const {
        static const std::vector<std::uint8_t> kEmpty;
        return data_ ? *data_ : kEmpty;
    }

    /// Implicit view conversion so decode()/restore()-style span consumers
    /// keep working unchanged.
    operator std::span<const std::uint8_t>() const { return bytes(); }

    bool empty() const { return !data_ || data_->empty(); }
    std::size_t size() const { return data_ ? data_->size() : 0; }

    /// True when both refer to the exact same heap buffer (zero-copy
    /// sharing actually happened, not just equal contents).
    bool sharesBufferWith(const SharedBytes& other) const {
        return data_ != nullptr && data_ == other.data_;
    }

    /// Holders of the underlying buffer (0 for the empty payload).
    long useCount() const { return data_ ? data_.use_count() : 0; }

    friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
        return a.bytes() == b.bytes();
    }
    friend bool operator==(const SharedBytes& a,
                           const std::vector<std::uint8_t>& b) {
        return a.bytes() == b;
    }
    friend bool operator==(const std::vector<std::uint8_t>& a,
                           const SharedBytes& b) {
        return a == b.bytes();
    }

private:
    std::shared_ptr<const std::vector<std::uint8_t>> data_;
};

} // namespace cop::core
