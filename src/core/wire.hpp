#pragma once

/// \file wire.hpp
/// Wire formats of the framework-level message payloads exchanged between
/// workers, relay servers, project servers and clients. Every payload
/// struct declares its message type (`kType`) and a streaming
/// serialize/deserialize pair; the envelope layer (core/envelope.hpp) uses
/// these to give Server/Worker/Client a typed RPC surface instead of raw
/// byte blobs. The `encode`/`decode` convenience wrappers produce/consume
/// whole buffers.

#include <cstdint>
#include <string>
#include <vector>

#include "core/command.hpp"
#include "net/message.hpp"
#include "util/serialize.hpp"

namespace cop::core {

/// Worker capability announcement / workload request (paper §2.3). Also
/// carries the list of servers already visited so relaying cannot loop.
struct WorkloadRequestPayload {
    static constexpr net::MessageType kType = net::MessageType::WorkloadRequest;

    net::NodeId worker = net::kInvalidNode;
    std::string platform;
    int cores = 0;
    std::vector<std::string> executables;
    std::vector<net::NodeId> visited;

    void serialize(BinaryWriter& w) const;
    static WorkloadRequestPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static WorkloadRequestPayload decode(std::span<const std::uint8_t> data);
};

struct WorkloadAssignPayload {
    static constexpr net::MessageType kType = net::MessageType::WorkloadAssign;

    std::vector<CommandSpec> commands;

    void serialize(BinaryWriter& w) const;
    static WorkloadAssignPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static WorkloadAssignPayload decode(std::span<const std::uint8_t> data);
};

/// Heartbeat status: which commands this worker is running and where their
/// project servers live. Intentionally tiny (paper: < 200 bytes).
struct HeartbeatPayload {
    static constexpr net::MessageType kType = net::MessageType::Heartbeat;

    net::NodeId worker = net::kInvalidNode;
    std::vector<CommandId> running;
    std::vector<net::NodeId> projectServers; ///< parallel to `running`

    void serialize(BinaryWriter& w) const;
    static HeartbeatPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static HeartbeatPayload decode(std::span<const std::uint8_t> data);
};

/// Mid-run checkpoint streamed to the worker's closest server.
struct CheckpointPayload {
    static constexpr net::MessageType kType = net::MessageType::CheckpointData;

    CommandId commandId = 0;
    ProjectId projectId = 0;
    net::NodeId projectServer = net::kInvalidNode;
    SharedBytes blob; ///< shared with the cache / in-flight table (COW)

    void serialize(BinaryWriter& w) const;
    static CheckpointPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static CheckpointPayload decode(std::span<const std::uint8_t> data);
};

/// Failure signal from a worker's server to a project server, carrying the
/// newest cached checkpoints so commands restart from them (paper §2.3).
struct WorkerFailedPayload {
    static constexpr net::MessageType kType = net::MessageType::WorkerFailed;

    net::NodeId worker = net::kInvalidNode;
    std::vector<CommandId> commands;
    std::vector<SharedBytes> checkpoints; ///< may hold empties (shared, COW)

    void serialize(BinaryWriter& w) const;
    static WorkerFailedPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static WorkerFailedPayload decode(std::span<const std::uint8_t> data);
};

/// A finished (or failed — see result.success) command travelling from the
/// worker towards its project server, possibly relayed through other
/// servers. Carries the project server explicitly so any relay can route
/// it without side-channel state.
struct CommandOutputPayload {
    static constexpr net::MessageType kType = net::MessageType::CommandOutput;

    CommandResult result;
    net::NodeId projectServer = net::kInvalidNode;

    void serialize(BinaryWriter& w) const;
    static CommandOutputPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static CommandOutputPayload decode(std::span<const std::uint8_t> data);
};

/// A worker's closest server vouches for the worker towards a remote
/// project server: renews the leases of the listed commands.
struct LeaseRenewPayload {
    static constexpr net::MessageType kType = net::MessageType::LeaseRenew;

    net::NodeId worker = net::kInvalidNode;
    std::vector<CommandId> commands;

    void serialize(BinaryWriter& w) const;
    static LeaseRenewPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static LeaseRenewPayload decode(std::span<const std::uint8_t> data);
};

/// Negative response to a workload request (no commands anywhere), or a
/// backpressure signal: retryAfterSeconds > 0 asks the worker to hold its
/// next poll at least that long (park queue full, admission pressure).
struct NoWorkPayload {
    static constexpr net::MessageType kType = net::MessageType::NoWorkAvailable;

    net::NodeId worker = net::kInvalidNode; ///< the requester being answered
    double retryAfterSeconds = 0.0; ///< 0 = poll at the worker's own backoff

    void serialize(BinaryWriter& w) const;
    static NoWorkPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static NoWorkPayload decode(std::span<const std::uint8_t> data);
};

/// Monitoring/control request from the command-line client (paper §2.4).
struct ClientRequestPayload {
    static constexpr net::MessageType kType = net::MessageType::ClientRequest;

    ProjectId projectId = 0;
    std::string command;

    void serialize(BinaryWriter& w) const;
    static ClientRequestPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static ClientRequestPayload decode(std::span<const std::uint8_t> data);
};

struct ClientResponsePayload {
    static constexpr net::MessageType kType = net::MessageType::ClientResponse;

    std::string text;
    /// False when the request was load-shed by admission control; the
    /// client should back off retryAfterSeconds before resubmitting.
    bool accepted = true;
    double retryAfterSeconds = 0.0;

    void serialize(BinaryWriter& w) const;
    static ClientResponsePayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static ClientResponsePayload decode(std::span<const std::uint8_t> data);
};

/// An edge server's aggregated heartbeat digest towards one project
/// server: instead of relaying a LeaseRenew per heartbeat, the edge
/// accumulates renewals across its workers and flushes one summary per
/// aggregation window (paper §2.3 pushed further: heartbeats are
/// *summarized*, never forwarded). `counts[i]` commands in the flattened
/// `commands` list belong to `workers[i]`; decode validates that the
/// counts sum to exactly `commands.size()`.
struct HeartbeatSummaryPayload {
    static constexpr net::MessageType kType =
        net::MessageType::HeartbeatSummary;

    net::NodeId edge = net::kInvalidNode; ///< aggregating edge server
    std::vector<net::NodeId> workers;
    std::vector<std::uint32_t> counts; ///< parallel to `workers`
    std::vector<CommandId> commands;   ///< flattened, grouped by worker

    void serialize(BinaryWriter& w) const;
    static HeartbeatSummaryPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static HeartbeatSummaryPayload decode(std::span<const std::uint8_t> data);
};

/// One coalesced sub-envelope inside a Batch frame: the fields of the
/// original Message that the receiver needs to replay it — type tag,
/// message id (dedup/retransmit identity is end-to-end and survives
/// batching), ack flag and payload bytes.
struct BatchEntry {
    net::MessageType type = net::MessageType::Heartbeat;
    std::uint64_t messageId = 0;
    bool requireAck = false;
    std::vector<std::uint8_t> payload;
};

/// N sub-envelopes sharing one wire frame (Nagle-style transmit
/// coalescing). The decode loop validates the entry count against the
/// remaining bytes before any allocation and rejects nested batches, so a
/// hostile count or recursion bomb fails with IoError up front.
struct BatchPayload {
    static constexpr net::MessageType kType = net::MessageType::Batch;

    std::vector<BatchEntry> entries;

    /// Payload bytes belonging to bulk sub-envelopes (checkpoint /
    /// trajectory data a shared filesystem carries out-of-band).
    std::size_t bulkPayloadBytes() const;

    void serialize(BinaryWriter& w) const;
    static BatchPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static BatchPayload decode(std::span<const std::uint8_t> data);
};

/// End-to-end delivery acknowledgement (envelope protocol).
struct AckPayload {
    static constexpr net::MessageType kType = net::MessageType::Ack;

    std::uint64_t ackedMessageId = 0;

    void serialize(BinaryWriter& w) const;
    static AckPayload deserialize(BinaryReader& r);
    std::vector<std::uint8_t> encode() const;
    std::size_t encodedSize() const; ///< exact wire size, for reserve()
    static AckPayload decode(std::span<const std::uint8_t> data);
};

} // namespace cop::core
