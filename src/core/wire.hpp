#pragma once

/// \file wire.hpp
/// Wire formats of the framework-level message payloads exchanged between
/// workers, relay servers and project servers.

#include <cstdint>
#include <string>
#include <vector>

#include "core/command.hpp"
#include "net/message.hpp"
#include "util/serialize.hpp"

namespace cop::core {

/// Worker capability announcement / workload request (paper §2.3). Also
/// carries the list of servers already visited so relaying cannot loop.
struct WorkloadRequestPayload {
    net::NodeId worker = net::kInvalidNode;
    std::string platform;
    int cores = 0;
    std::vector<std::string> executables;
    std::vector<net::NodeId> visited;

    std::vector<std::uint8_t> encode() const;
    static WorkloadRequestPayload decode(std::span<const std::uint8_t> data);
};

struct WorkloadAssignPayload {
    std::vector<CommandSpec> commands;

    std::vector<std::uint8_t> encode() const;
    static WorkloadAssignPayload decode(std::span<const std::uint8_t> data);
};

/// Heartbeat status: which commands this worker is running and where their
/// project servers live. Intentionally tiny (paper: < 200 bytes).
struct HeartbeatPayload {
    net::NodeId worker = net::kInvalidNode;
    std::vector<CommandId> running;
    std::vector<net::NodeId> projectServers; ///< parallel to `running`

    std::vector<std::uint8_t> encode() const;
    static HeartbeatPayload decode(std::span<const std::uint8_t> data);
};

/// Mid-run checkpoint streamed to the worker's closest server.
struct CheckpointPayload {
    CommandId commandId = 0;
    ProjectId projectId = 0;
    net::NodeId projectServer = net::kInvalidNode;
    std::vector<std::uint8_t> blob;

    std::vector<std::uint8_t> encode() const;
    static CheckpointPayload decode(std::span<const std::uint8_t> data);
};

/// Failure signal from a worker's server to a project server, carrying the
/// newest cached checkpoints so commands restart from them (paper §2.3).
struct WorkerFailedPayload {
    net::NodeId worker = net::kInvalidNode;
    std::vector<CommandId> commands;
    std::vector<std::vector<std::uint8_t>> checkpoints; ///< may hold empties

    std::vector<std::uint8_t> encode() const;
    static WorkerFailedPayload decode(std::span<const std::uint8_t> data);
};

} // namespace cop::core
