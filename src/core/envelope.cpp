#include "core/envelope.hpp"

#include <exception>
#include <utility>

namespace cop::core::wire {

namespace {

constexpr std::size_t kDedupWindow = 8192;

} // namespace

std::optional<AnyPayload> decodePayload(const net::Message& msg) {
    using net::MessageType;
    try {
        switch (msg.type) {
        case MessageType::WorkerAnnounce:
        case MessageType::WorkloadRequest:
            return WorkloadRequestPayload::decode(msg.payload);
        case MessageType::WorkloadAssign:
            return WorkloadAssignPayload::decode(msg.payload);
        case MessageType::Heartbeat:
            return HeartbeatPayload::decode(msg.payload);
        case MessageType::CheckpointData:
            return CheckpointPayload::decode(msg.payload);
        case MessageType::CommandOutput:
        case MessageType::CommandFailed:
        case MessageType::ProjectData:
            return CommandOutputPayload::decode(msg.payload);
        case MessageType::WorkerFailed:
            return WorkerFailedPayload::decode(msg.payload);
        case MessageType::LeaseRenew:
            return LeaseRenewPayload::decode(msg.payload);
        case MessageType::NoWorkAvailable:
            return NoWorkPayload::decode(msg.payload);
        case MessageType::ClientRequest:
            return ClientRequestPayload::decode(msg.payload);
        case MessageType::ClientResponse:
            return ClientResponsePayload::decode(msg.payload);
        case MessageType::Ack:
            return AckPayload::decode(msg.payload);
        }
    } catch (const std::exception&) {
        return std::nullopt; // truncated or corrupt payload
    }
    return std::nullopt;
}

Endpoint::Endpoint(net::OverlayNetwork& net, net::Node& node,
                   RetryPolicy policy)
    : net_(&net), node_(&node), policy_(policy), rng_(node.keys().publicKey) {
    node_->setHandler([this](const net::Message& msg) { receive(msg); });
}

net::NodeId Endpoint::id() const { return node_->id(); }

std::uint64_t Endpoint::sendRaw(net::MessageType type, net::NodeId to,
                                std::vector<std::uint8_t> payload,
                                bool reliable) {
    if (down_) return 0;
    net::Message msg;
    msg.type = type;
    msg.source = node_->id();
    msg.destination = to;
    msg.id = net_->nextMessageId();
    msg.requireAck = reliable;
    msg.payload = std::move(payload);
    ++stats_.sent;
    if (reliable) {
        const std::uint64_t id = msg.id;
        auto [it, inserted] = pending_.emplace(id, Pending{msg, 1, 0});
        (void)inserted;
        net_->send(std::move(msg));
        armRetry(id);
        return id;
    }
    const std::uint64_t id = msg.id;
    net_->send(std::move(msg));
    return id;
}

std::uint64_t Endpoint::resend(const net::Message& failed,
                               net::NodeId newDestination) {
    if (down_) return 0;
    net::Message msg = failed;
    msg.source = node_->id();
    msg.destination = newDestination;
    msg.id = net_->nextMessageId();
    msg.requireAck = true;
    ++stats_.sent;
    const std::uint64_t id = msg.id;
    pending_.emplace(id, Pending{msg, 1, 0});
    net_->send(std::move(msg));
    armRetry(id);
    return id;
}

void Endpoint::armRetry(std::uint64_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    const double delay = policy_.backoff.delay(it->second.attempt - 1, rng_);
    it->second.timer =
        net_->loop().scheduleTimer(delay, [this, id] { onRetryTimer(id); });
}

void Endpoint::onRetryTimer(std::uint64_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end() || down_) return;
    Pending& p = it->second;
    p.timer = 0;
    if (p.attempt >= policy_.maxAttempts) {
        ++stats_.deliveriesFailed;
        net::Message failed = std::move(p.msg);
        pending_.erase(it);
        if (failureHandler_) failureHandler_(failed);
        return;
    }
    ++p.attempt;
    ++stats_.retransmits;
    net_->send(p.msg); // same message id: receiver dedups redeliveries
    armRetry(id);
}

void Endpoint::receive(const net::Message& msg) {
    if (down_) return;
    if (msg.type == net::MessageType::Ack) {
        const auto decoded = decodePayload(msg);
        if (!decoded) {
            ++stats_.malformedDropped;
            return;
        }
        const auto& ack = std::get<AckPayload>(*decoded);
        auto it = pending_.find(ack.ackedMessageId);
        if (it != pending_.end()) {
            if (it->second.timer != 0)
                net_->loop().cancelTimer(it->second.timer);
            pending_.erase(it);
        }
        return;
    }
    if (msg.requireAck) {
        // Ack every copy: the ack for an earlier copy may have been lost.
        AckPayload ack;
        ack.ackedMessageId = msg.id;
        ++stats_.acksSent;
        net::Message reply;
        reply.type = net::MessageType::Ack;
        reply.source = node_->id();
        reply.destination = msg.source;
        reply.id = net_->nextMessageId();
        reply.payload = ack.encode();
        net_->send(std::move(reply));
    }
    if (seen(msg.id)) {
        ++stats_.duplicatesDropped;
        return;
    }
    rememberSeen(msg.id);
    const auto decoded = decodePayload(msg);
    if (!decoded) {
        ++stats_.malformedDropped;
        return;
    }
    if (!handler_) return;
    Envelope env;
    env.from = msg.source;
    env.messageId = msg.id;
    env.type = msg.type;
    env.payload = *decoded;
    handler_(env, msg);
}

void Endpoint::rememberSeen(std::uint64_t id) {
    seenSet_.insert(id);
    seenOrder_.push_back(id);
    while (seenOrder_.size() > kDedupWindow) {
        seenSet_.erase(seenOrder_.front());
        seenOrder_.pop_front();
    }
}

void Endpoint::shutdown() {
    down_ = true;
    for (auto& [id, p] : pending_) {
        if (p.timer != 0) net_->loop().cancelTimer(p.timer);
    }
    pending_.clear();
}

} // namespace cop::core::wire
