#include "core/envelope.hpp"

#include <exception>
#include <utility>

namespace cop::core::wire {

namespace {

constexpr std::size_t kDedupWindow = 8192;

} // namespace

std::optional<AnyPayload> decodePayload(const net::Message& msg) {
    using net::MessageType;
    try {
        switch (msg.type) {
        case MessageType::WorkerAnnounce:
        case MessageType::WorkloadRequest:
            return WorkloadRequestPayload::decode(msg.payload);
        case MessageType::WorkloadAssign:
            return WorkloadAssignPayload::decode(msg.payload);
        case MessageType::Heartbeat:
            return HeartbeatPayload::decode(msg.payload);
        case MessageType::CheckpointData:
            return CheckpointPayload::decode(msg.payload);
        case MessageType::CommandOutput:
        case MessageType::CommandFailed:
        case MessageType::ProjectData:
            return CommandOutputPayload::decode(msg.payload);
        case MessageType::WorkerFailed:
            return WorkerFailedPayload::decode(msg.payload);
        case MessageType::LeaseRenew:
            return LeaseRenewPayload::decode(msg.payload);
        case MessageType::NoWorkAvailable:
            return NoWorkPayload::decode(msg.payload);
        case MessageType::ClientRequest:
            return ClientRequestPayload::decode(msg.payload);
        case MessageType::ClientResponse:
            return ClientResponsePayload::decode(msg.payload);
        case MessageType::HeartbeatSummary:
            return HeartbeatSummaryPayload::decode(msg.payload);
        case MessageType::Ack:
            return AckPayload::decode(msg.payload);
        case MessageType::Batch:
            return BatchPayload::decode(msg.payload);
        }
    } catch (const std::exception&) {
        return std::nullopt; // truncated or corrupt payload
    }
    return std::nullopt;
}

Endpoint::Endpoint(net::OverlayNetwork& net, net::Node& node,
                   RetryPolicy policy, BatchPolicy batch)
    : net_(&net), node_(&node), policy_(policy), batch_(batch),
      rng_(node.keys().publicKey) {
    node_->setHandler([this](const net::Message& msg) { receive(msg); });
}

net::NodeId Endpoint::id() const { return node_->id(); }

std::uint64_t Endpoint::sendRaw(net::MessageType type, net::NodeId to,
                                std::vector<std::uint8_t> payload,
                                bool reliable) {
    if (down_) return 0;
    net::Message msg;
    msg.type = type;
    msg.source = node_->id();
    msg.destination = to;
    msg.id = net_->nextMessageId();
    msg.requireAck = reliable;
    msg.payload = std::move(payload);
    ++stats_.sent;
    const std::uint64_t id = msg.id;
    if (reliable)
        pending_.emplace(id,
                         Pending{msg, 1, 0, net_->loop().now()});
    if (batch_.enabled)
        enqueue(std::move(msg), /*isAck=*/false);
    else
        net_->send(std::move(msg));
    if (reliable) armRetry(id);
    return id;
}

std::uint64_t Endpoint::resend(const net::Message& failed,
                               net::NodeId newDestination) {
    if (down_) return 0;
    net::Message msg = failed;
    msg.source = node_->id();
    msg.destination = newDestination;
    msg.id = net_->nextMessageId();
    msg.requireAck = true;
    ++stats_.sent;
    const std::uint64_t id = msg.id;
    pending_.emplace(id, Pending{msg, 1, 0, net_->loop().now()});
    if (batch_.enabled)
        enqueue(std::move(msg), /*isAck=*/false);
    else
        net_->send(std::move(msg));
    armRetry(id);
    return id;
}

void Endpoint::enqueue(net::Message msg, bool isAck) {
    const net::NodeId dest = msg.destination;
    TxQueue& q = queues_[dest];
    BatchEntry entry;
    entry.type = msg.type;
    entry.messageId = msg.id;
    entry.requireAck = msg.requireAck;
    entry.payload = std::move(msg.payload);
    q.payloadBytes += entry.payload.size();
    q.entries.push_back(std::move(entry));
    if (q.entries.size() >= batch_.maxEnvelopes) {
        flush(dest, FlushReason::Count);
        return;
    }
    if (q.payloadBytes >= batch_.maxBytes) {
        flush(dest, FlushReason::Bytes);
        return;
    }
    // Arm (or tighten) the Nagle timer. Acks may use a shorter deadline —
    // the standalone-ack latency bound — which pulls any queued data
    // forward with them; a data envelope never loosens a pending deadline.
    const double delay = isAck ? batch_.ackFlushDelay : batch_.flushDelay;
    const double deadline = net_->loop().now() + delay;
    if (q.timer != 0) {
        if (deadline >= q.deadline) return;
        net_->loop().cancelTimer(q.timer);
    }
    q.deadline = deadline;
    const FlushReason reason =
        isAck ? FlushReason::AckTimer : FlushReason::Timer;
    q.timer = net_->loop().scheduleTimer(delay, [this, dest, reason] {
        auto it = queues_.find(dest);
        if (it != queues_.end()) it->second.timer = 0;
        flush(dest, reason);
    });
}

void Endpoint::flush(net::NodeId dest, FlushReason reason) {
    if (down_) return;
    auto it = queues_.find(dest);
    if (it == queues_.end()) return;
    TxQueue& q = it->second;
    if (q.timer != 0) {
        net_->loop().cancelTimer(q.timer);
        q.timer = 0;
    }
    if (q.entries.empty()) return;
    switch (reason) {
    case FlushReason::Count: ++stats_.flushOnCount; break;
    case FlushReason::Bytes: ++stats_.flushOnBytes; break;
    case FlushReason::Timer: ++stats_.flushOnTimer; break;
    case FlushReason::AckTimer: ++stats_.flushOnAckTimer; break;
    }
    std::vector<BatchEntry> entries = std::move(q.entries);
    q.entries.clear();
    q.payloadBytes = 0;

    if (entries.size() == 1) {
        // Nothing to coalesce with: send the lone envelope as itself, so
        // sparse traffic keeps its exact unbatched wire shape.
        ++stats_.singletonsSent;
        BatchEntry e = std::move(entries.front());
        net::Message msg;
        msg.type = e.type;
        msg.source = node_->id();
        msg.destination = dest;
        msg.id = e.messageId;
        msg.requireAck = e.requireAck;
        msg.payload = std::move(e.payload);
        net_->send(std::move(msg));
        return;
    }

    BatchPayload payload;
    payload.entries = std::move(entries);
    ++stats_.batchesSent;
    stats_.envelopesBatched += payload.entries.size();
    for (const auto& e : payload.entries)
        if (e.type == net::MessageType::Ack) ++stats_.acksPiggybacked;
    net::Message msg;
    msg.type = net::MessageType::Batch;
    msg.source = node_->id();
    msg.destination = dest;
    msg.id = net_->nextMessageId();
    msg.requireAck = false; // reliability stays end-to-end per sub-envelope
    msg.batchCount = std::uint32_t(payload.entries.size());
    msg.bulkBytes = payload.bulkPayloadBytes();
    msg.payload = payload.encode();
    net_->send(std::move(msg));
}

void Endpoint::flushAll() {
    if (down_ || !batch_.enabled) return;
    for (auto& [dest, q] : queues_) {
        (void)q;
        flush(dest, FlushReason::Timer);
    }
}

void Endpoint::armRetry(std::uint64_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    const double delay = policy_.backoff.delay(it->second.attempt - 1, rng_);
    it->second.timer =
        net_->loop().scheduleTimer(delay, [this, id] { onRetryTimer(id); });
}

void Endpoint::onRetryTimer(std::uint64_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end() || down_) return;
    Pending& p = it->second;
    p.timer = 0;
    if (p.attempt >= policy_.maxAttempts) {
        ++stats_.deliveriesFailed;
        net::Message failed = std::move(p.msg);
        pending_.erase(it);
        if (failureHandler_) failureHandler_(failed);
        return;
    }
    ++p.attempt;
    ++stats_.retransmits;
    net_->send(p.msg); // same message id: receiver dedups redeliveries
    armRetry(id);
}

void Endpoint::receive(const net::Message& msg) {
    if (down_) return;
    if (msg.type == net::MessageType::Batch) {
        receiveBatch(msg);
        return;
    }
    if (msg.type == net::MessageType::Ack) {
        const auto decoded = decodePayload(msg);
        if (!decoded) {
            ++stats_.malformedDropped;
            return;
        }
        const auto& ack = std::get<AckPayload>(*decoded);
        auto it = pending_.find(ack.ackedMessageId);
        if (it != pending_.end()) {
            if (ackLatencyObserver_)
                ackLatencyObserver_(net_->loop().now() -
                                    it->second.firstSentAt);
            if (it->second.timer != 0)
                net_->loop().cancelTimer(it->second.timer);
            pending_.erase(it);
        }
        return;
    }
    if (msg.requireAck) {
        // Ack every copy: the ack for an earlier copy may have been lost.
        AckPayload ack;
        ack.ackedMessageId = msg.id;
        ++stats_.acksSent;
        net::Message reply;
        reply.type = net::MessageType::Ack;
        reply.source = node_->id();
        reply.destination = msg.source;
        reply.id = net_->nextMessageId();
        reply.payload = ack.encode();
        // Piggyback the ack on whatever else is (or is about to be)
        // heading back to the sender; the ack-flush deadline bounds how
        // long it may wait for company.
        if (batch_.enabled)
            enqueue(std::move(reply), /*isAck=*/true);
        else
            net_->send(std::move(reply));
    }
    if (seen(msg.id)) {
        ++stats_.duplicatesDropped;
        return;
    }
    rememberSeen(msg.id);
    const auto decoded = decodePayload(msg);
    if (!decoded) {
        ++stats_.malformedDropped;
        return;
    }
    if (!handler_) return;
    Envelope env;
    env.from = msg.source;
    env.messageId = msg.id;
    env.type = msg.type;
    env.payload = *decoded;
    handler_(env, msg);
}

void Endpoint::receiveBatch(const net::Message& msg) {
    const auto decoded = decodePayload(msg);
    if (!decoded) {
        // One malformed frame, one count: sub-envelopes of a corrupt batch
        // are indistinguishable from garbage and are dropped wholesale.
        ++stats_.malformedDropped;
        return;
    }
    const auto& batchPayload = std::get<BatchPayload>(*decoded);
    // Replay each sub-envelope through the normal receive path: acks,
    // per-id dedup and malformed counting behave exactly as if the
    // envelopes had arrived as singletons. Nested batches cannot occur
    // (the decoder rejects them), so this cannot recurse.
    for (const auto& e : batchPayload.entries) {
        net::Message sub;
        sub.type = e.type;
        sub.source = msg.source;
        sub.destination = node_->id();
        sub.id = e.messageId;
        sub.requireAck = e.requireAck;
        sub.payload = e.payload;
        receive(sub);
        if (down_) return; // a handler may have shut us down mid-batch
    }
}

void Endpoint::rememberSeen(std::uint64_t id) {
    seenSet_.insert(id);
    seenOrder_.push_back(id);
    while (seenOrder_.size() > kDedupWindow) {
        seenSet_.erase(seenOrder_.front());
        seenOrder_.pop_front();
    }
}

void Endpoint::shutdown() {
    down_ = true;
    for (auto& [id, p] : pending_) {
        if (p.timer != 0) net_->loop().cancelTimer(p.timer);
    }
    pending_.clear();
    // Crash semantics: queued-but-unflushed envelopes die with the node,
    // and their flush timers must never fire into freed state.
    for (auto& [dest, q] : queues_) {
        if (q.timer != 0) net_->loop().cancelTimer(q.timer);
    }
    queues_.clear();
}

void Endpoint::reset() {
    shutdown();
    seenSet_.clear();
    seenOrder_.clear();
    down_ = false;
}

} // namespace cop::core::wire
