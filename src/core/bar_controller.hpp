#pragma once

/// \file bar_controller.hpp
/// Bennett-acceptance-ratio free-energy controller — the second plugin the
/// paper ships with Copernicus (§5). Manages a chain of lambda windows,
/// farms out sampling commands, and keeps sampling — allocating new
/// commands to the windows with the largest error contribution — until the
/// total standard error reaches a user-specified target (the stop
/// criterion described in §2).

#include <optional>
#include <vector>

#include "core/controller.hpp"
#include "fe/bar.hpp"
#include "fe/harmonic.hpp"
#include "util/random.hpp"

namespace cop::core {

struct BarControllerParams {
    fe::HarmonicState first{1.0, 0.0};
    fe::HarmonicState last{4.0, 1.0};
    std::size_t numWindows = 4;
    std::size_t samplesPerCommand = 2000;
    double beta = 1.0;
    /// Stop when the total deltaF standard error drops below this.
    double targetError = 0.02;
    int maxRounds = 25;
    /// New sampling commands issued per refinement round.
    int commandsPerRound = 8;
    std::uint64_t seed = 1976; // Bennett's year
};

class BarController : public Controller {
public:
    explicit BarController(BarControllerParams params);

    void onProjectStart(ProjectContext& ctx) override;
    void onCommandFinished(ProjectContext& ctx,
                           const CommandResult& result) override;
    bool isDone(const ProjectContext& ctx) const override;
    std::string statusReport(const ProjectContext& ctx) const override;

    /// Latest chain estimate (empty before the first round completes).
    const std::optional<fe::LambdaChainResult>& estimate() const {
        return estimate_;
    }
    int rounds() const { return rounds_; }
    /// Exact analytic result for the configured chain (for validation).
    double analyticDeltaF() const;

private:
    void submitWindowCommand(ProjectContext& ctx, std::size_t window,
                             bool forward);
    void refine(ProjectContext& ctx);

    BarControllerParams params_;
    std::vector<fe::HarmonicState> states_;
    std::vector<std::vector<double>> forwardWork_;
    std::vector<std::vector<double>> reverseWork_;
    std::optional<fe::LambdaChainResult> estimate_;
    Rng rng_;
    int rounds_ = 0;
    bool done_ = false;
};

} // namespace cop::core
