#include "core/controller.hpp"

namespace cop::core {

void Controller::onCommandFailed(ProjectContext& ctx,
                                 const CommandSpec& spec) {
    (void)ctx;
    (void)spec;
}

std::string Controller::statusReport(const ProjectContext& ctx) const {
    return "project " + std::to_string(ctx.projectId()) + ": " +
           std::to_string(ctx.outstandingCommands()) +
           " commands outstanding";
}

std::string Controller::handleClientCommand(ProjectContext& ctx,
                                            const std::string& command) {
    (void)ctx;
    return "unknown command: " + command;
}

} // namespace cop::core
