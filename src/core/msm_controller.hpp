#pragma once

/// \file msm_controller.hpp
/// The Markov-state-model adaptive sampling controller (paper §3): spawns
/// an initial swarm of trajectories from user-supplied unfolded
/// conformations, extends each trajectory as its segments come back,
/// periodically clusters all accumulated data, terminates well-sampled
/// trajectories and spawns new ones from under-explored microstates using
/// even or adaptive (uncertainty) weighting.

#include <map>
#include <optional>
#include <vector>

#include "core/controller.hpp"
#include "mdlib/proteins.hpp"
#include "msm/adaptive.hpp"
#include "msm/pipeline.hpp"
#include "util/statistics.hpp"

namespace cop::core {

struct MsmControllerParams {
    md::GoModel model;
    /// Starting conformations (paper: nine unfolded villin structures).
    std::vector<std::vector<Vec3>> startingConformations;
    /// Trajectories per starting conformation (paper: 25, for 225 total).
    int tasksPerStart = 25;
    /// Steps per command segment (paper: 50 ns).
    std::int64_t segmentSteps = md::kSegmentSteps;
    /// Results between clustering steps; defaults to the swarm size.
    int commandsPerGeneration = 0;
    /// Stop after this many clustering generations.
    int maxGenerations = 8;
    /// Clustering / MSM estimation settings.
    msm::MsmPipelineParams pipeline;
    /// Radius-degradation threshold for the incremental MSM builder's
    /// fall-back to a full re-cluster (<= 0 re-clusters every generation).
    double msmRebuildRadiusFactor = 1.5;
    /// Optional thread pool for the MSM analysis (clustering, assignment,
    /// counting). Not owned; may be null (serial analysis).
    ThreadPool* analysisPool = nullptr;
    /// Weighting for respawns; the first `evenGenerations` use Even
    /// regardless (paper §3.2: even early, adaptive once states settle).
    msm::WeightingScheme weighting = msm::WeightingScheme::Adaptive;
    int evenGenerations = 1;
    /// Template integrator settings (temperature etc.).
    md::SimulationConfig simulation;
    std::uint64_t seed = 2011;
};

/// Per-generation monitoring record (drives Figs. 2-4 and the status
/// report a client sees).
struct GenerationRecord {
    int generation = 0;
    double wallClockSimTime = 0.0; ///< overlay-network time of clustering
    std::size_t totalSnapshots = 0;
    std::size_t numClusters = 0;
    double minRmsdAngstrom = 0.0;       ///< best frame seen so far
    double meanRmsdAngstrom = 0.0;      ///< over this generation's snapshots
    double foldedFraction = 0.0;        ///< frames within 3.5 A of native
    double predictedRmsdAngstrom = 0.0; ///< blind prediction score (§3.2)
    int seedsSpawned = 0;
    /// Work accounting for this generation's MSM build (incremental vs
    /// full rebuild, RMSD calls vs pruned, per-stage wall time).
    msm::MsmStats msmStats;
};

class MsmController : public Controller {
public:
    explicit MsmController(MsmControllerParams params);

    void onProjectStart(ProjectContext& ctx) override;
    void onCommandFinished(ProjectContext& ctx,
                           const CommandResult& result) override;
    void onCommandFailed(ProjectContext& ctx,
                         const CommandSpec& spec) override;
    bool isDone(const ProjectContext& ctx) const override;
    std::string statusReport(const ProjectContext& ctx) const override;

    /// Dynamic parameter changes (paper §3.2: "future versions will allow
    /// the values to be changed dynamically, since the optimal settings
    /// depend on the available compute resources"). Supported:
    ///   "set clusters <n>"  — clusters per clustering step
    ///   "set seeds <n>"     — trajectories respawned per generation
    ///   "set weighting even|adaptive"
    std::string handleClientCommand(ProjectContext& ctx,
                                    const std::string& command) override;

    // --- Monitoring / analysis access --------------------------------

    int generation() const { return generation_; }
    const std::vector<GenerationRecord>& history() const { return history_; }
    /// All trajectories accumulated so far, keyed by trajectory id.
    const std::map<int, md::Trajectory>& trajectories() const {
        return trajectories_;
    }
    /// The most recent MSM build (empty before the first clustering).
    const std::optional<msm::MsmPipelineResult>& lastMsm() const {
        return lastMsm_;
    }
    const MsmControllerParams& params() const { return params_; }
    /// Minimum RMSD to native over every frame seen, in Angstrom.
    double minRmsdAngstrom() const { return minRmsdAngstrom_; }
    /// Simulation time (overlay clock) when a frame first came within
    /// 3.5 A of native; negative if not yet.
    double firstFoldedTime() const { return firstFoldedTime_; }
    /// Generation in which the first folded frame appeared (-1 if none).
    int firstFoldedGeneration() const { return firstFoldedGeneration_; }

private:
    void spawnInitialSwarm(ProjectContext& ctx);
    void submitSegment(ProjectContext& ctx, int trajectoryId,
                       std::vector<std::uint8_t> checkpoint);
    void clusteringStep(ProjectContext& ctx);
    /// Blind native-state prediction (paper §3.2): RMSD between native and
    /// the highest-equilibrium-population cluster, averaged over samples.
    double scoreBlindPrediction(const msm::MsmPipelineResult& msmResult);

    MsmControllerParams params_;
    Rng rng_;
    msm::IncrementalMsmBuilder msmBuilder_;
    int nextTrajectoryId_ = 0;
    int generation_ = 0;
    int resultsSinceClustering_ = 0;
    bool done_ = false;
    std::map<int, md::Trajectory> trajectories_;
    std::vector<GenerationRecord> history_;
    std::optional<msm::MsmPipelineResult> lastMsm_;
    double minRmsdAngstrom_ = 1e30;
    double firstFoldedTime_ = -1.0;
    int firstFoldedGeneration_ = -1;
    // Cumulative snapshot monitoring statistics, extended per generation by
    // scanning only frames not seen before (statScanFrom_ per trajectory)
    // instead of re-walking every trajectory from frame 0.
    RunningStats snapshotRmsdStats_;
    std::size_t snapshotsFolded_ = 0;
    std::size_t snapshotsSeen_ = 0;
    std::map<int, std::size_t> statScanFrom_;
};

} // namespace cop::core
