#pragma once

/// \file wal.hpp
/// Group-commit write-ahead log for the server's scheduler/lease plane.
/// Every durable mutation (tenant add, push, claim, complete, requeue,
/// lease renew, park/unpark, checkpoint, worker liveness) appends one
/// typed record; records buffer in RAM and a zero-delay flush timer on
/// the event loop turns every burst of same-tick mutations into a single
/// write + fdatasync — the same amortization the wire layer's envelope
/// coalescing applies to frames (DESIGN.md "Durability & tiered
/// storage"). Because every externally visible message has latency > 0,
/// the flush always lands before any effect of the mutation reaches a
/// peer, so group commit is externally indistinguishable from synchronous
/// durability.
///
/// On-disk framing, little-endian:
///   record  := [u32 bodyLen][u32 crc32(body)][body]
///   body    := [u8 WalRecordType][type-specific fields]
/// A snapshot (periodic, temp + rename) captures the whole plane and
/// truncates the log. Recovery loads the snapshot, then replays intact
/// records; a torn tail (truncated length/body, or a CRC mismatch with
/// nothing after it) ends replay cleanly, while corruption *followed by
/// more bytes* — which a crash cannot produce on an append-only log —
/// throws IoError. Replay treats the log as untrusted bytes: lengths are
/// bounds-checked before any allocation (fuzz/wal_fuzz.cpp).

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/event_loop.hpp"

namespace cop::core {

enum class WalRecordType : std::uint8_t {
    TenantAdd = 1,
    Push = 2,
    Claim = 3,
    Complete = 4,
    Requeue = 5,
    RequeueWorker = 6,
    Checkpoint = 7,
    Park = 8,
    ParkDrop = 9,
    ParkCursor = 10,
    Renew = 11,
    WorkerSeen = 12,
    WorkerGone = 13,
    CacheAdd = 14,
    CacheDrop = 15,
};
constexpr std::uint8_t kWalRecordTypeMax = 15;

struct WalConfig {
    std::string dir;                ///< log + snapshot directory
    net::EventLoop* loop = nullptr; ///< arms the group-commit timer
    double flushDelay = 0.0;        ///< flush-window length (sim seconds)
    std::size_t flushBytes = std::size_t(1) << 20; ///< early-flush bound
    std::size_t maxRecordBytes = std::size_t(64) << 20; ///< replay guard
    /// Log-file preallocation chunk (0 disables). Appends go into
    /// fallocate()d space via pwrite, so fdatasync never waits on an
    /// ext4 metadata-journal commit for file growth — that commit, not
    /// the data write, dominates small-batch sync latency. The unwritten
    /// tail reads back as zeros; a zero record length marks it at replay.
    std::size_t preallocBytes = std::size_t(1) << 20;
};

struct WalStats {
    std::uint64_t records = 0;
    std::uint64_t flushes = 0;      ///< write+fdatasync batches
    std::uint64_t syncs = 0;        ///< fdatasync calls (== flushes)
    std::uint64_t bytesWritten = 0;
    std::uint64_t replayedRecords = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t snapshotBytes = 0;
    std::uint64_t corruptTailBytes = 0; ///< torn bytes dropped at recovery
    std::size_t bufferedBytes = 0;
    std::uint64_t recordsSinceSnapshot = 0;
};

class Wal {
public:
    using ReplayHandler =
        std::function<void(WalRecordType, std::span<const std::uint8_t>)>;

    explicit Wal(WalConfig cfg);
    ~Wal();
    Wal(const Wal&) = delete;
    Wal& operator=(const Wal&) = delete;

    /// Buffers one record and arms the flush timer (or flushes inline
    /// once the buffer passes flushBytes).
    void append(WalRecordType type, std::span<const std::uint8_t> body);
    /// Writes and fdatasyncs everything buffered (one syscall pair).
    void flush();

    /// Atomically replaces the snapshot with `state` (temp + rename) and
    /// truncates the log.
    void writeSnapshot(std::span<const std::uint8_t> state);
    /// Loads the snapshot payload; empty if none was ever written.
    /// Validates the snapshot's own magic + CRC.
    std::vector<std::uint8_t> loadSnapshot();
    /// Replays every intact record in the log through `handler`. Torn
    /// tails are tolerated (counted in stats); mid-log corruption throws.
    void replay(const ReplayHandler& handler);

    /// Pure log-stream parser shared by replay() and the fuzz harness:
    /// validates framing, CRCs and type tags over an arbitrary byte
    /// buffer. Returns bytes consumed; `tornTail` reports trailing bytes
    /// that look like an interrupted append rather than corruption.
    static std::size_t parseLog(std::span<const std::uint8_t> bytes,
                                const ReplayHandler& handler,
                                std::size_t maxRecordBytes,
                                std::size_t* tornTail);
    /// Snapshot-container parser (magic + length + CRC), shared with the
    /// fuzz harness. Throws IoError on malformed input.
    static std::vector<std::uint8_t>
    parseSnapshot(std::span<const std::uint8_t> bytes,
                  std::size_t maxBytes);

    const WalStats& stats() const { return stats_; }
    const std::string& dir() const { return cfg_.dir; }

private:
    void openLog(bool truncate);
    void armFlush();
    /// Extends the preallocated region to cover `bytes` more at writeOff_.
    void ensureCapacity(std::size_t bytes);

    WalConfig cfg_;
    int fd_ = -1;
    std::vector<std::uint8_t> buffer_;
    bool flushArmed_ = false;
    /// End of the valid record prefix found at open — the position the
    /// next flush writes to (pwrite, not O_APPEND).
    std::size_t writeOff_ = 0;
    std::size_t preallocEnd_ = 0; ///< file bytes fallocate()d so far
    /// True while bytes past writeOff_ hold a torn tail from a previous
    /// incarnation. replay() must still see (and count) them, so the
    /// first flush — the point where appending over them is committed —
    /// truncates the tail, not the constructor.
    bool tailDirty_ = false;
    WalStats stats_;
};

} // namespace cop::core
