#include "core/server.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace cop::core {

/// ProjectContext implementation bound to one hosted project.
class Server::ContextImpl : public ProjectContext {
public:
    ContextImpl(Server& server, ProjectId id) : server_(&server), id_(id) {}

    ProjectId projectId() const override { return id_; }

    net::SimTime now() const override {
        return server_->network_->loop().now();
    }

    CommandId submitCommand(CommandSpec spec) override {
        spec.id = server_->nextCommandId();
        spec.projectId = id_;
        spec.projectServer = server_->id();
        const CommandId cid = spec.id;
        server_->projects_.at(id_).outstanding.insert(cid);
        server_->queue_.push(std::move(spec));
        server_->scheduleServiceWaiting();
        return cid;
    }

    std::size_t outstandingCommands() const override {
        return server_->projects_.at(id_).outstanding.size();
    }

private:
    Server* server_;
    ProjectId id_;
};

Server::Server(net::OverlayNetwork& network, std::string name,
               net::KeyPair keys, ServerConfig config)
    : network_(&network), node_(network, std::move(name), keys),
      config_(config) {
    COP_REQUIRE(config.heartbeatInterval > 0.0, "bad heartbeat interval");
    COP_REQUIRE(config.failureMultiplier >= 1.0, "bad failure multiplier");
    node_.setHandler([this](const net::Message& msg) { handleMessage(msg); });
}

Server::~Server() = default;

void Server::addPeer(net::NodeId peer) {
    COP_REQUIRE(peer != id(), "cannot peer with self");
    if (std::find(peers_.begin(), peers_.end(), peer) == peers_.end())
        peers_.push_back(peer);
}

ProjectId Server::createProject(std::string name,
                                std::unique_ptr<Controller> controller) {
    COP_REQUIRE(controller != nullptr, "project needs a controller");
    const ProjectId id = nextProjectId_++;
    ProjectEntry entry;
    entry.name = std::move(name);
    entry.controller = std::move(controller);
    entry.context = std::make_unique<ContextImpl>(*this, id);
    auto [it, inserted] = projects_.emplace(id, std::move(entry));
    COP_ENSURE(inserted, "duplicate project id");
    it->second.controller->onProjectStart(*it->second.context);
    return id;
}

bool Server::projectDone(ProjectId id) const {
    const auto& entry = projects_.at(id);
    return entry.controller->isDone(*entry.context);
}

bool Server::allProjectsDone() const {
    for (const auto& [id, entry] : projects_)
        if (!entry.controller->isDone(*entry.context)) return false;
    return true;
}

std::string Server::projectStatus(ProjectId id) const {
    const auto& entry = projects_.at(id);
    return entry.name + ": " + entry.controller->statusReport(*entry.context);
}

Controller& Server::projectController(ProjectId id) {
    return *projects_.at(id).controller;
}

CommandId Server::nextCommandId() {
    // Server id in the high bits keeps ids globally unique across project
    // servers sharing the same worker pool.
    return (std::uint64_t(id()) + 1) << 40 | ++commandCounter_;
}

void Server::sendMessage(net::MessageType type, net::NodeId to,
                         std::vector<std::uint8_t> payload,
                         std::uint64_t payloadKey) {
    net::Message msg;
    msg.type = type;
    msg.source = id();
    msg.destination = to;
    msg.payload = std::move(payload);
    msg.payloadKey = payloadKey;
    network_->send(std::move(msg));
}

void Server::handleMessage(const net::Message& msg) {
    switch (msg.type) {
    case net::MessageType::WorkerAnnounce:
    case net::MessageType::WorkloadRequest:
        handleWorkloadRequest(msg);
        break;
    case net::MessageType::CommandOutput:
    case net::MessageType::CommandFailed:
    case net::MessageType::ProjectData:
        handleCommandOutput(msg);
        break;
    case net::MessageType::Heartbeat:
        handleHeartbeat(msg);
        break;
    case net::MessageType::CheckpointData:
        handleCheckpoint(msg);
        break;
    case net::MessageType::WorkerFailed:
        handleWorkerFailed(msg);
        break;
    case net::MessageType::ClientRequest:
        handleClientRequest(msg);
        break;
    default:
        COP_LOG_WARN("server") << name() << ": unexpected message type "
                               << net::messageTypeName(msg.type);
    }
}

void Server::handleWorkloadRequest(const net::Message& msg) {
    ++stats_.workloadRequests;
    auto request = WorkloadRequestPayload::decode(msg.payload);

    // Track the worker if it reports to us directly (its closest server).
    if (msg.source == request.worker) {
        auto& rec = workers_[request.worker];
        rec.lastHeartbeat = network_->loop().now();
        ensureSweepScheduled();
    }

    auto claimed =
        queue_.claim(request.executables, request.cores, request.worker);
    if (!claimed.empty()) {
        stats_.commandsAssigned += claimed.size();
        WorkloadAssignPayload assign;
        assign.commands = std::move(claimed);
        sendMessage(net::MessageType::WorkloadAssign, request.worker,
                    assign.encode());
        return;
    }

    // Relay towards the first peer server not yet visited (paper §2.2:
    // "routing of requests ... to the first server with available
    // commands").
    request.visited.push_back(id());
    for (net::NodeId peer : peers_) {
        if (std::find(request.visited.begin(), request.visited.end(), peer) !=
            request.visited.end())
            continue;
        ++stats_.requestsForwarded;
        net::Message fwd;
        fwd.type = net::MessageType::WorkloadRequest;
        fwd.source = id();
        fwd.destination = peer;
        fwd.payload = request.encode();
        network_->send(std::move(fwd));
        return;
    }
    if (config_.parkRequests && hostsUnfinishedProject()) {
        parkedRequests_.push_back(std::move(request));
        return;
    }
    sendMessage(net::MessageType::NoWorkAvailable, request.worker, {});
}

bool Server::hostsUnfinishedProject() const {
    for (const auto& [id, entry] : projects_)
        if (!entry.controller->isDone(*entry.context)) return true;
    return false;
}

void Server::scheduleServiceWaiting() {
    if (servicePending_ || parkedRequests_.empty()) return;
    servicePending_ = true;
    network_->loop().schedule(0.0, [this] {
        servicePending_ = false;
        serviceWaitingRequests();
    });
}

void Server::serviceWaitingRequests() {
    std::vector<WorkloadRequestPayload> stillParked;
    for (auto& request : parkedRequests_) {
        auto claimed =
            queue_.claim(request.executables, request.cores, request.worker);
        if (!claimed.empty()) {
            stats_.commandsAssigned += claimed.size();
            WorkloadAssignPayload assign;
            assign.commands = std::move(claimed);
            sendMessage(net::MessageType::WorkloadAssign, request.worker,
                        assign.encode());
        } else if (hostsUnfinishedProject()) {
            stillParked.push_back(std::move(request));
        } else {
            sendMessage(net::MessageType::NoWorkAvailable, request.worker,
                        {});
        }
    }
    parkedRequests_ = std::move(stillParked);
}

void Server::handleCommandOutput(const net::Message& msg) {
    BinaryReader r(msg.payload);
    CommandResult result = CommandResult::deserialize(r);

    // Drop any cached checkpoints: the command is over.
    checkpointCache_.erase(result.commandId);

    if (projects_.find(result.projectId) != projects_.end()) {
        dispatchResult(std::move(result));
        return;
    }
    // Not ours: relay towards the project server (payloadKey carries it).
    const auto projectServer = net::NodeId(msg.payloadKey);
    if (projectServer == net::kInvalidNode || projectServer == id()) {
        COP_LOG_WARN("server") << name() << ": orphan command output "
                               << result.commandId;
        return;
    }
    sendMessage(net::MessageType::ProjectData, projectServer,
                std::vector<std::uint8_t>(msg.payload), msg.payloadKey);
}

void Server::dispatchResult(CommandResult result) {
    auto spec = queue_.complete(result.commandId);
    auto& entry = projects_.at(result.projectId);
    entry.outstanding.erase(result.commandId);
    if (result.success) {
        ++stats_.commandsCompleted;
        entry.controller->onCommandFinished(*entry.context, result);
    } else {
        ++stats_.commandsFailed;
        if (spec)
            entry.controller->onCommandFailed(*entry.context, *spec);
    }
}

void Server::handleHeartbeat(const net::Message& msg) {
    ++stats_.heartbeatsReceived;
    auto hb = HeartbeatPayload::decode(msg.payload);
    auto& rec = workers_[hb.worker];
    rec.lastHeartbeat = network_->loop().now();
    rec.lastPayload = std::move(hb);
    ensureSweepScheduled();
}

void Server::handleCheckpoint(const net::Message& msg) {
    if (!config_.cacheCheckpoints) return;
    auto cp = CheckpointPayload::decode(msg.payload);
    // If we host the project ourselves, feed the checkpoint straight into
    // the in-flight record; otherwise cache it for failure handoff.
    if (projects_.find(cp.projectId) != projects_.end()) {
        queue_.updateCheckpoint(cp.commandId, cp.blob);
        return;
    }
    checkpointCache_[cp.commandId] = std::move(cp);
}

void Server::handleWorkerFailed(const net::Message& msg) {
    auto payload = WorkerFailedPayload::decode(msg.payload);
    for (std::size_t i = 0; i < payload.commands.size(); ++i) {
        if (i < payload.checkpoints.size() && !payload.checkpoints[i].empty())
            queue_.updateCheckpoint(payload.commands[i],
                                    payload.checkpoints[i]);
    }
    const auto requeued = queue_.requeueWorker(payload.worker);
    stats_.commandsRequeued += requeued.size();
    COP_LOG_INFO("server") << name() << ": worker "
                           << network_->node(payload.worker).name()
                           << " failed; requeued " << requeued.size()
                           << " commands";
}

void Server::handleClientRequest(const net::Message& msg) {
    BinaryReader r(msg.payload);
    const auto projectId = r.read<std::uint64_t>();
    const std::string command = r.atEnd() ? std::string() : r.readString();
    std::string reply;
    auto it = projects_.find(projectId);
    if (it == projects_.end()) {
        reply = "unknown project " + std::to_string(projectId);
    } else if (command.empty() || command == "status") {
        reply = projectStatus(projectId);
    } else {
        // Control command: routed to the project's controller (dynamic
        // parameter changes, §3.2 "future versions").
        reply = it->second.controller->handleClientCommand(
            *it->second.context, command);
    }
    BinaryWriter w;
    w.write(reply);
    sendMessage(net::MessageType::ClientResponse, msg.source,
                w.takeBuffer());
}

void Server::ensureSweepScheduled() {
    if (sweepScheduled_) return;
    sweepScheduled_ = true;
    network_->loop().schedule(config_.heartbeatInterval,
                              [this] { sweepWorkers(); });
}

void Server::sweepWorkers() {
    sweepScheduled_ = false;
    const double now = network_->loop().now();
    const double deadline =
        config_.failureMultiplier * config_.heartbeatInterval;
    for (auto it = workers_.begin(); it != workers_.end();) {
        if (now - it->second.lastHeartbeat > deadline) {
            ++stats_.workersFailed;
            const auto& hb = it->second.lastPayload;
            // Group the dead worker's commands by project server and send
            // each one a failure signal with our cached checkpoints.
            std::map<net::NodeId, WorkerFailedPayload> perServer;
            for (std::size_t i = 0; i < hb.running.size(); ++i) {
                const net::NodeId ps = i < hb.projectServers.size()
                                           ? hb.projectServers[i]
                                           : net::kInvalidNode;
                if (ps == net::kInvalidNode) continue;
                auto& p = perServer[ps];
                p.worker = it->first;
                p.commands.push_back(hb.running[i]);
                auto cpIt = checkpointCache_.find(hb.running[i]);
                p.checkpoints.push_back(cpIt != checkpointCache_.end()
                                            ? cpIt->second.blob
                                            : std::vector<std::uint8_t>{});
            }
            for (auto& [ps, payload] : perServer) {
                if (ps == id()) {
                    // We host the project: requeue directly.
                    for (std::size_t i = 0; i < payload.commands.size(); ++i)
                        if (!payload.checkpoints[i].empty())
                            queue_.updateCheckpoint(payload.commands[i],
                                                    payload.checkpoints[i]);
                    const auto requeued = queue_.requeueWorker(it->first);
                    stats_.commandsRequeued += requeued.size();
                } else {
                    sendMessage(net::MessageType::WorkerFailed, ps,
                                payload.encode());
                }
            }
            // If the worker ran commands we host but never heartbeated them
            // (edge case), requeue those too.
            const auto extra = queue_.requeueWorker(it->first);
            stats_.commandsRequeued += extra.size();
            it = workers_.erase(it);
        } else {
            ++it;
        }
    }
    if (!workers_.empty()) ensureSweepScheduled();
}

} // namespace cop::core
