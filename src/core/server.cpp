#include "core/server.hpp"

#include <algorithm>

#include "util/codec.hpp"
#include "util/logging.hpp"

namespace cop::core {

namespace {

/// Checkpoint blobs dominate WAL volume, so they ride the log as codec
/// frames (util::encode). The Stored fallback caps the cost of an
/// incompressible blob at the 18-byte frame header; replay bounds the
/// inflation below before allocating.
constexpr std::size_t kMaxWalBlobBytes = std::size_t(1) << 30;

} // namespace

/// ProjectContext implementation bound to one hosted project.
class Server::ContextImpl : public ProjectContext {
public:
    ContextImpl(Server& server, ProjectId id) : server_(&server), id_(id) {}

    ProjectId projectId() const override { return id_; }

    net::SimTime now() const override {
        return server_->network_->loop().now();
    }

    CommandId submitCommand(CommandSpec spec) override {
        spec.id = server_->nextCommandId();
        spec.projectId = id_;
        spec.projectServer = server_->id();
        const CommandId cid = spec.id;
        // Logged before the push stashes the input into the vault, while
        // the payload still travels inline with the spec.
        logPush(spec, /*force=*/true);
        server_->projects_.at(id_).outstanding.insert(cid);
        // Controller reactions to finished commands must never deadlock on
        // the project's own quota: plain submits bypass admission.
        server_->scheduler_.push(id_, std::move(spec), /*force=*/true);
        server_->scheduleServiceWaiting();
        return cid;
    }

    SubmitResult trySubmitCommand(CommandSpec spec) override {
        spec.id = server_->nextCommandId();
        spec.projectId = id_;
        spec.projectServer = server_->id();
        const CommandId cid = spec.id;
        // Rejected pushes are logged too: replay re-runs admission against
        // the identical replayed state (and burns the same command id).
        logPush(spec, /*force=*/false);
        const auto decision =
            server_->scheduler_.push(id_, std::move(spec), /*force=*/false);
        if (!decision.admitted)
            return SubmitResult{0, false, decision.retryAfter};
        server_->projects_.at(id_).outstanding.insert(cid);
        server_->scheduleServiceWaiting();
        return SubmitResult{cid, true, 0.0};
    }

    std::size_t outstandingCommands() const override {
        return server_->projects_.at(id_).outstanding.size();
    }

private:
    void logPush(const CommandSpec& spec, bool force) {
        if (!server_->wal_) return;
        auto& w = server_->walWriter();
        w.write(std::uint64_t(id_));
        w.write(std::uint8_t(force ? 1 : 0));
        spec.serialize(w);
        server_->walAppend(WalRecordType::Push, w);
    }

    Server* server_;
    ProjectId id_;
};

Server::Server(net::OverlayNetwork& network, std::string name,
               net::KeyPair keys, ServerConfig config)
    : network_(&network), node_(network, std::move(name), keys),
      endpoint_(network, node_, config.rpc, config.batch), config_(config) {
    COP_REQUIRE(config.heartbeatInterval > 0.0, "bad heartbeat interval");
    COP_REQUIRE(config.failureMultiplier >= 1.0, "bad failure multiplier");
    COP_REQUIRE(config.leaseMultiplier >= 1.0, "bad lease multiplier");
    COP_REQUIRE(config.summaryWindow >= 0.0, "bad summary window");
    endpoint_.onEnvelope(
        [this](const wire::Envelope& env, const net::Message& msg) {
            handleEnvelope(env, msg);
        });
    endpoint_.onDeliveryFailure(
        [this](const net::Message& failed) { handleDeliveryFailure(failed); });

    StoreConfig storeCfg;
    storeCfg.ramBytes = config_.durability.storeRamBytes;
    storeCfg.dir = config_.durability.storeDir;
    storeCfg.compress = config_.durability.compressSpill;
    store_ = std::make_unique<SegmentStore>(storeCfg);
    inputVault_.store = store_.get();
    scheduler_.setVault(&inputVault_);
    if (config_.durability.walEnabled) {
        COP_REQUIRE(!config_.durability.walDir.empty(),
                    "durability: walDir required when walEnabled");
        WalConfig walCfg;
        walCfg.dir = config_.durability.walDir;
        walCfg.loop = &network.loop();
        walCfg.flushDelay = config_.durability.walFlushDelay;
        wal_ = std::make_unique<Wal>(walCfg);
    }
}

Server::~Server() = default;

void Server::addPeer(net::NodeId peer) {
    COP_REQUIRE(peer != id(), "cannot peer with self");
    if (std::find(peers_.begin(), peers_.end(), peer) == peers_.end())
        peers_.push_back(peer);
}

ProjectId Server::createProject(ProjectSpec spec,
                                std::unique_ptr<Controller> controller) {
    COP_REQUIRE(controller != nullptr, "project needs a controller");
    const ProjectId id = nextProjectId_++;
    TenantConfig tenant;
    tenant.weight = spec.weight;
    tenant.claimPolicy = spec.claimPolicy.value_or(config_.claimPolicy);
    tenant.maxPendingCommands = spec.maxPendingCommands;
    tenant.maxPendingBytes = spec.maxPendingBytes;
    tenant.admissionRetryAfter = spec.admissionRetryAfter;
    scheduler_.addTenant(id, tenant);
    if (wal_) {
        auto& w = walWriter();
        w.write(std::uint64_t(id));
        w.write(tenant.weight);
        w.write(std::uint8_t(tenant.claimPolicy));
        w.write(std::uint64_t(tenant.maxPendingCommands));
        w.write(std::uint64_t(tenant.maxPendingBytes));
        w.write(tenant.admissionRetryAfter);
        w.write(spec.name);
        walAppend(WalRecordType::TenantAdd, w);
    }
    ProjectEntry entry;
    entry.name = std::move(spec.name);
    entry.controller = std::move(controller);
    entry.context = std::make_unique<ContextImpl>(*this, id);
    auto [it, inserted] = projects_.emplace(id, std::move(entry));
    COP_ENSURE(inserted, "duplicate project id");
    it->second.controller->onProjectStart(*it->second.context);
    return id;
}

ProjectId Server::createProject(std::string name,
                                std::unique_ptr<Controller> controller) {
    ProjectSpec spec;
    spec.name = std::move(name);
    return createProject(std::move(spec), std::move(controller));
}

bool Server::projectDone(ProjectId id) const {
    const auto& entry = projects_.at(id);
    return entry.controller->isDone(*entry.context);
}

bool Server::allProjectsDone() const {
    for (const auto& [id, entry] : projects_)
        if (!entry.controller->isDone(*entry.context)) return false;
    return true;
}

std::string Server::projectStatus(ProjectId id) const {
    const auto& entry = projects_.at(id);
    return entry.name + ": " + entry.controller->statusReport(*entry.context);
}

Controller& Server::projectController(ProjectId id) {
    return *projects_.at(id).controller;
}

ServerMetrics Server::metricsSnapshot() const {
    ServerMetrics m;
    m.server = stats_;
    m.scheduler = scheduler_.stats();
    m.wire = endpoint_.stats();
    m.store = store_->stats();
    if (wal_) m.wal = wal_->stats();
    m.recoveries = recoveries_;
    m.tenants.reserve(projects_.size());
    for (const auto& [pid, entry] : projects_) {
        TenantMetrics t;
        t.id = pid;
        t.name = entry.name;
        t.config = scheduler_.tenantConfig(pid);
        t.counters = scheduler_.tenantStats(pid);
        t.pending = scheduler_.pendingOf(pid);
        t.pendingBytes = scheduler_.pendingBytesOf(pid);
        t.inFlight = scheduler_.inFlightOf(pid);
        t.outstanding = entry.outstanding.size();
        t.done = entry.controller->isDone(*entry.context);
        m.tenants.push_back(std::move(t));
    }
    return m;
}

CommandId Server::nextCommandId() {
    // Server id in the high bits keeps ids globally unique across project
    // servers sharing the same worker pool.
    return (std::uint64_t(id()) + 1) << 40 | ++commandCounter_;
}

void Server::handleEnvelope(const wire::Envelope& env,
                            const net::Message& msg) {
    std::visit(
        [&](const auto& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, WorkloadRequestPayload>)
                handleWorkloadRequest(payload, msg);
            else if constexpr (std::is_same_v<T, CommandOutputPayload>)
                handleCommandOutput(payload);
            else if constexpr (std::is_same_v<T, HeartbeatPayload>)
                handleHeartbeat(payload);
            else if constexpr (std::is_same_v<T, CheckpointPayload>)
                handleCheckpoint(payload);
            else if constexpr (std::is_same_v<T, WorkerFailedPayload>)
                handleWorkerFailed(payload);
            else if constexpr (std::is_same_v<T, LeaseRenewPayload>)
                handleLeaseRenew(payload);
            else if constexpr (std::is_same_v<T, HeartbeatSummaryPayload>)
                handleHeartbeatSummary(payload);
            else if constexpr (std::is_same_v<T, ClientRequestPayload>)
                handleClientRequest(payload, msg);
            else
                COP_LOG_WARN("server")
                    << name() << ": unexpected message type "
                    << net::messageTypeName(env.type);
        },
        env.payload);
}

std::vector<CommandSpec> Server::claimFor(
    const WorkloadRequestPayload& request) {
    auto claimed =
        scheduler_.claim(request.executables, request.cores, request.worker);
    std::vector<CommandSpec> fresh;
    fresh.reserve(claimed.size());
    for (auto& cmd : claimed) {
        if (completedCommands_.count(cmd.id) > 0) {
            // Stale re-execution of a command whose first run already
            // delivered its result (requeue raced with recovery).
            scheduler_.complete(cmd.id);
            releaseLease(cmd.id);
            continue;
        }
        grantLease(cmd.id, request.worker);
        fresh.push_back(std::move(cmd));
    }
    if (wal_) {
        // The claim is logged by its *inputs* plus the expected outcome:
        // replay re-runs the real DRR claim against the replayed shards,
        // which reproduces every deficit/cursor/ring transition exactly —
        // even for claims that assigned nothing — and the logged ids
        // cross-check that the replayed schedule did not diverge.
        auto& w = walWriter();
        w.write(std::int32_t(request.worker));
        w.write(std::int32_t(request.cores));
        w.write(request.executables);
        w.write(network_->loop().now() + leaseDuration());
        w.write(std::uint64_t(fresh.size()));
        for (const auto& c : fresh) w.write(std::uint64_t(c.id));
        walAppend(WalRecordType::Claim, w);
    }
    return fresh;
}

void Server::handleWorkloadRequest(const WorkloadRequestPayload& request,
                                   const net::Message& msg) {
    ++stats_.workloadRequests;

    // Track the worker if it reports to us directly (its closest server).
    if (msg.source == request.worker) {
        auto& rec = workers_[request.worker];
        rec.lastHeartbeat = network_->loop().now();
        ensureSweepScheduled();
        if (wal_) {
            auto& w = walWriter();
            w.write(std::int32_t(request.worker));
            w.write(rec.lastHeartbeat);
            w.write(std::uint8_t(0)); // liveness only, no payload update
            walAppend(WalRecordType::WorkerSeen, w);
        }
    }

    auto claimed = claimFor(request);
    if (!claimed.empty()) {
        stats_.commandsAssigned += claimed.size();
        WorkloadAssignPayload assign;
        assign.commands = std::move(claimed);
        endpoint_.send(request.worker, assign);
        return;
    }

    // Relay towards the first peer server not yet visited (paper §2.2:
    // "routing of requests ... to the first server with available
    // commands").
    WorkloadRequestPayload fwd = request;
    fwd.visited.push_back(id());
    for (net::NodeId peer : peers_) {
        if (std::find(fwd.visited.begin(), fwd.visited.end(), peer) !=
            fwd.visited.end())
            continue;
        ++stats_.requestsForwarded;
        endpoint_.send(peer, fwd);
        return;
    }
    if (config_.parkRequests && hostsUnfinishedProject()) {
        // Park-queue backpressure: a worker that already holds a parked
        // slot may always refresh it, but beyond the cap new workers are
        // bounced with an explicit retry-after instead of growing the
        // queue (and the per-slot sweep cost) without bound.
        const bool alreadyParked = std::any_of(
            parkedRequests_.begin(), parkedRequests_.end(),
            [&](const auto& p) { return p.worker == request.worker; });
        if (!alreadyParked && config_.maxParkedRequests > 0 &&
            parkedRequests_.size() >= config_.maxParkedRequests) {
            ++stats_.parkRejections;
            endpoint_.send(request.worker,
                           NoWorkPayload{request.worker,
                                         config_.parkRetryAfter});
            return;
        }
        parkRequest(std::move(fwd));
        return;
    }
    endpoint_.send(request.worker, NoWorkPayload{request.worker});
}

void Server::pruneParkedRequest(net::NodeId dead) {
    const auto parkedEnd = std::remove_if(
        parkedRequests_.begin(), parkedRequests_.end(),
        [dead](const WorkloadRequestPayload& p) { return p.worker == dead; });
    const auto removed = std::uint64_t(parkedRequests_.end() - parkedEnd);
    if (removed > 0 && wal_ && !recovering_) {
        auto& w = walWriter();
        w.write(std::int32_t(dead));
        walAppend(WalRecordType::ParkDrop, w);
    }
    stats_.parkedRequestsDropped += removed;
    parkedRequests_.erase(parkedEnd, parkedRequests_.end());
}

void Server::parkRequest(WorkloadRequestPayload request) {
    if (wal_ && !recovering_) {
        auto& w = walWriter();
        request.serialize(w);
        walAppend(WalRecordType::Park, w);
    }
    // One parked slot per worker: a re-sent request (retransmit that beat
    // its ack, or a poll after a timeout) replaces the stale one instead
    // of producing double assignments later.
    for (auto& parked : parkedRequests_) {
        if (parked.worker == request.worker) {
            parked = std::move(request);
            return;
        }
    }
    parkedRequests_.push_back(std::move(request));
}

bool Server::hostsUnfinishedProject() const {
    for (const auto& [id, entry] : projects_)
        if (!entry.controller->isDone(*entry.context)) return true;
    return false;
}

void Server::scheduleServiceWaiting() {
    if (servicePending_ || parkedRequests_.empty()) return;
    servicePending_ = true;
    network_->loop().schedule(0.0, [this] {
        servicePending_ = false;
        serviceWaitingRequests();
    });
}

void Server::serviceWaitingRequests() {
    if (parkedRequests_.empty()) return;
    // Rotate the starting slot each pass: when fresh work only covers a
    // few of the parked workers, the ones at the head of the list must not
    // monopolize every refill (the claim itself is tenant-fair via DRR;
    // this keeps it worker-fair too).
    const std::size_t n = parkedRequests_.size();
    const std::size_t start = unparkCursor_ % n;
    std::vector<WorkloadRequestPayload> stillParked;
    for (std::size_t k = 0; k < n; ++k) {
        auto& request = parkedRequests_[(start + k) % n];
        auto claimed = claimFor(request);
        if (!claimed.empty()) {
            stats_.commandsAssigned += claimed.size();
            WorkloadAssignPayload assign;
            assign.commands = std::move(claimed);
            endpoint_.send(request.worker, assign);
        } else if (hostsUnfinishedProject()) {
            stillParked.push_back(std::move(request));
        } else {
            endpoint_.send(request.worker, NoWorkPayload{request.worker});
        }
    }
    parkedRequests_ = std::move(stillParked);
    unparkCursor_ = start + 1;
    if (wal_) {
        // The pass reorders the park list (rotation) and drops answered
        // slots; the record pins the surviving composition *and order* so
        // replayed future passes rotate identically.
        auto& w = walWriter();
        w.write(std::uint64_t(unparkCursor_));
        w.write(std::uint64_t(parkedRequests_.size()));
        for (const auto& p : parkedRequests_) w.write(std::int32_t(p.worker));
        walAppend(WalRecordType::ParkCursor, w);
    }
}

void Server::handleCommandOutput(const CommandOutputPayload& payload) {
    // Drop any cached checkpoints: the command is over.
    if (checkpointMeta_.erase(payload.result.commandId) > 0) {
        store_->erase(cacheKey(payload.result.commandId));
        if (wal_) {
            auto& w = walWriter();
            w.write(std::uint64_t(payload.result.commandId));
            walAppend(WalRecordType::CacheDrop, w);
        }
    }

    if (projects_.find(payload.result.projectId) != projects_.end()) {
        dispatchResult(payload.result);
        return;
    }
    // Not ours: relay towards the project server named in the payload.
    if (payload.projectServer == net::kInvalidNode ||
        payload.projectServer == id()) {
        COP_LOG_WARN("server") << name() << ": orphan command output "
                               << payload.result.commandId;
        return;
    }
    endpoint_.send(payload.projectServer, payload);
}

void Server::dispatchResult(CommandResult result) {
    if (wal_) {
        auto& w = walWriter();
        w.write(std::uint64_t(result.commandId));
        w.write(std::uint64_t(result.projectId));
        w.write(std::uint8_t(result.success ? 1 : 0));
        walAppend(WalRecordType::Complete, w);
    }
    if (completedCommands_.count(result.commandId) > 0) {
        // A requeued copy of this command also ran to completion; the
        // first result won. Clear any in-flight record so the re-execution
        // does not linger (and its lease with it).
        scheduler_.complete(result.commandId);
        releaseLease(result.commandId);
        ++stats_.duplicateResultsDropped;
        return;
    }
    auto spec = scheduler_.complete(result.commandId);
    releaseLease(result.commandId);
    auto& entry = projects_.at(result.projectId);
    entry.outstanding.erase(result.commandId);
    if (result.success) {
        completedCommands_.insert(result.commandId);
        ++stats_.commandsCompleted;
        entry.controller->onCommandFinished(*entry.context, result);
    } else {
        ++stats_.commandsFailed;
        if (spec)
            entry.controller->onCommandFailed(*entry.context, *spec);
    }
}

void Server::handleHeartbeat(const HeartbeatPayload& hb) {
    ++stats_.heartbeatsReceived;
    auto& rec = workers_[hb.worker];
    rec.lastHeartbeat = network_->loop().now();
    rec.lastPayload = hb;
    ensureSweepScheduled();
    if (wal_) {
        auto& w = walWriter();
        w.write(std::int32_t(hb.worker));
        w.write(rec.lastHeartbeat);
        w.write(std::uint8_t(1));
        hb.serialize(w);
        walAppend(WalRecordType::WorkerSeen, w);
    }

    // Renew leases: locally for commands we host; renewals towards remote
    // project servers are buffered and flushed as one HeartbeatSummary
    // digest per server per aggregation window (heartbeats themselves
    // never leave the closest server, paper §2.3 — and with aggregation,
    // neither does a per-heartbeat renewal message).
    std::map<net::NodeId, std::vector<CommandId>> remote;
    std::vector<CommandId> local;
    for (std::size_t i = 0; i < hb.running.size(); ++i) {
        const net::NodeId ps = i < hb.projectServers.size()
                                   ? hb.projectServers[i]
                                   : net::kInvalidNode;
        if (ps == id()) {
            renewLease(hb.running[i], hb.worker);
            local.push_back(hb.running[i]);
        } else if (ps != net::kInvalidNode) {
            remote[ps].push_back(hb.running[i]);
        }
    }
    if (!local.empty() && wal_) {
        auto& w = walWriter();
        w.write(std::int32_t(hb.worker));
        w.write(network_->loop().now() + leaseDuration());
        w.write(local);
        walAppend(WalRecordType::Renew, w);
    }
    for (auto& [ps, commands] : remote)
        bufferLeaseRenewals(ps, hb.worker, std::move(commands));
}

void Server::bufferLeaseRenewals(net::NodeId projectServer,
                                 net::NodeId worker,
                                 std::vector<CommandId> commands) {
    if (commands.empty()) return;
    stats_.leaseRenewalsAggregated += commands.size();
    // A newer heartbeat supersedes the older one within the window: the
    // flush renews each lease once either way.
    summaryBuffers_[projectServer][worker] = std::move(commands);
    ensureSummaryFlushScheduled();
}

void Server::ensureSummaryFlushScheduled() {
    if (summaryFlushScheduled_ || summaryBuffers_.empty()) return;
    summaryFlushScheduled_ = true;
    network_->loop().schedule(summaryWindow(),
                              [this] { flushHeartbeatSummaries(); });
}

void Server::flushHeartbeatSummaries() {
    summaryFlushScheduled_ = false;
    for (auto& [ps, byWorker] : summaryBuffers_) {
        if (byWorker.empty()) continue; // all renewers died this window
        HeartbeatSummaryPayload summary;
        summary.edge = id();
        for (auto& [worker, commands] : byWorker) {
            summary.workers.push_back(worker);
            summary.counts.push_back(std::uint32_t(commands.size()));
            summary.commands.insert(summary.commands.end(), commands.begin(),
                                    commands.end());
        }
        ++stats_.heartbeatSummariesSent;
        // Unreliable like the LeaseRenew it replaces: a lost digest is
        // covered by the next window; leases span several windows.
        endpoint_.send(ps, summary, /*reliable=*/false);
    }
    summaryBuffers_.clear();
}

void Server::handleHeartbeatSummary(const HeartbeatSummaryPayload& summary) {
    ++stats_.heartbeatSummariesReceived;
    const double expires = network_->loop().now() + leaseDuration();
    std::size_t k = 0;
    for (std::size_t i = 0; i < summary.workers.size(); ++i) {
        std::vector<CommandId> ids;
        for (std::uint32_t j = 0; j < summary.counts[i]; ++j, ++k) {
            renewLease(summary.commands[k], summary.workers[i]);
            ids.push_back(summary.commands[k]);
        }
        if (!ids.empty() && wal_) {
            auto& w = walWriter();
            w.write(std::int32_t(summary.workers[i]));
            w.write(expires);
            w.write(ids);
            walAppend(WalRecordType::Renew, w);
        }
    }
}

void Server::handleLeaseRenew(const LeaseRenewPayload& payload) {
    for (CommandId id : payload.commands)
        renewLease(id, payload.worker);
    if (!payload.commands.empty() && wal_) {
        auto& w = walWriter();
        w.write(std::int32_t(payload.worker));
        w.write(network_->loop().now() + leaseDuration());
        w.write(payload.commands);
        walAppend(WalRecordType::Renew, w);
    }
}

void Server::handleCheckpoint(const CheckpointPayload& cp) {
    if (!config_.cacheCheckpoints) return;
    // If we host the project ourselves, feed the checkpoint straight into
    // the in-flight record; otherwise cache it for failure handoff. Either
    // way the blob lands in the tiered store (via the queue's vault or
    // under cacheKey()), so a cold cache spills to disk instead of RAM.
    if (projects_.find(cp.projectId) != projects_.end()) {
        if (wal_) {
            auto& w = walWriter();
            w.write(std::uint64_t(cp.commandId));
            w.writeBytes(util::encode(cp.blob).frame);
            walAppend(WalRecordType::Checkpoint, w);
        }
        scheduler_.updateCheckpoint(cp.commandId, cp.blob);
        return;
    }
    checkpointMeta_[cp.commandId] =
        CachedCheckpoint{cp.projectId, cp.projectServer};
    store_->put(cacheKey(cp.commandId), cp.blob);
    if (wal_) {
        auto& w = walWriter();
        w.write(std::uint64_t(cp.commandId));
        w.write(std::uint64_t(cp.projectId));
        w.write(std::int32_t(cp.projectServer));
        w.writeBytes(util::encode(cp.blob).frame);
        walAppend(WalRecordType::CacheAdd, w);
    }
}

void Server::handleWorkerFailed(const WorkerFailedPayload& payload) {
    for (std::size_t i = 0; i < payload.commands.size(); ++i) {
        if (i < payload.checkpoints.size() &&
            !payload.checkpoints[i].empty()) {
            if (wal_) {
                auto& w = walWriter();
                w.write(std::uint64_t(payload.commands[i]));
                w.writeBytes(util::encode(payload.checkpoints[i]).frame);
                walAppend(WalRecordType::Checkpoint, w);
            }
            scheduler_.updateCheckpoint(payload.commands[i],
                                        payload.checkpoints[i]);
        }
    }
    if (wal_) {
        auto& w = walWriter();
        w.write(std::int32_t(payload.worker));
        walAppend(WalRecordType::RequeueWorker, w);
    }
    const auto requeued = scheduler_.requeueWorker(payload.worker);
    stats_.commandsRequeued += requeued.size();
    for (CommandId id : requeued) releaseLease(id);
    if (!requeued.empty()) {
        scheduleServiceWaiting();
        // The worker died holding our commands; if it also held a parked
        // long-poll slot here (request raced ahead of its final outputs),
        // drop it — nobody will answer for a dead worker.
        pruneParkedRequest(payload.worker);
    }
    COP_LOG_INFO("server") << name() << ": worker "
                           << network_->node(payload.worker).name()
                           << " failed; requeued " << requeued.size()
                           << " commands";
}

void Server::handleClientRequest(const ClientRequestPayload& request,
                                 const net::Message& msg) {
    std::string reply;
    auto it = projects_.find(request.projectId);
    if (it == projects_.end()) {
        reply = "unknown project " + std::to_string(request.projectId);
    } else if (request.command.empty() || request.command == "status") {
        reply = projectStatus(request.projectId);
    } else {
        // Control commands can fan out into fresh submissions; when the
        // tenant is already over its admission quota the request is shed
        // up front with a retry-after instead of reaching the controller.
        const auto gate = scheduler_.admit(request.projectId, CommandSpec{});
        if (!gate.admitted) {
            ++stats_.clientRequestsShed;
            ClientResponsePayload shed;
            shed.text = "busy: project " + std::to_string(request.projectId) +
                        " over admission quota";
            shed.accepted = false;
            shed.retryAfterSeconds = gate.retryAfter;
            endpoint_.send(msg.source, shed);
            return;
        }
        // Control command: routed to the project's controller (dynamic
        // parameter changes, §3.2 "future versions").
        reply = it->second.controller->handleClientCommand(
            *it->second.context, request.command);
    }
    endpoint_.send(msg.source, ClientResponsePayload{reply});
}

void Server::handleDeliveryFailure(const net::Message& failed) {
    // A reliable send exhausted its retransmits. For assignments, put the
    // commands straight back on the queue (the worker never confirmed
    // receiving them); everything else is covered by leases and polling.
    if (failed.type != net::MessageType::WorkloadAssign) return;
    const auto decoded = wire::decodePayload(failed);
    if (!decoded) return;
    const auto& assign = std::get<WorkloadAssignPayload>(*decoded);
    std::size_t requeued = 0;
    for (const auto& cmd : assign.commands) {
        const auto holder = scheduler_.holderOf(cmd.id);
        if (holder && *holder == failed.destination &&
            scheduler_.requeueCommand(cmd.id)) {
            releaseLease(cmd.id);
            if (wal_) {
                auto& w = walWriter();
                w.write(std::uint64_t(cmd.id));
                w.write(std::uint8_t(0)); // reason: delivery failure
                walAppend(WalRecordType::Requeue, w);
            }
            ++requeued;
        }
    }
    stats_.commandsRequeued += requeued;
    if (requeued > 0) scheduleServiceWaiting();
}

void Server::grantLease(CommandId id, net::NodeId worker) {
    leases_[id] = Lease{worker, network_->loop().now() + leaseDuration()};
    ensureLeaseSweepScheduled();
}

void Server::renewLease(CommandId id, net::NodeId worker) {
    auto it = leases_.find(id);
    if (it == leases_.end() || it->second.worker != worker) return;
    it->second.expires = network_->loop().now() + leaseDuration();
}

void Server::ensureLeaseSweepScheduled() {
    if (leaseSweepScheduled_ || leases_.empty()) return;
    leaseSweepScheduled_ = true;
    network_->loop().schedule(config_.heartbeatInterval,
                              [this] { sweepLeases(); });
}

void Server::sweepLeases() {
    leaseSweepScheduled_ = false;
    const double now = network_->loop().now();
    std::size_t requeued = 0;
    for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.expires <= now) {
            ++stats_.leasesExpired;
            if (wal_) {
                auto& w = walWriter();
                w.write(std::uint64_t(it->first));
                w.write(std::uint8_t(1)); // reason: lease expiry
                walAppend(WalRecordType::Requeue, w);
            }
            if (scheduler_.requeueCommand(it->first)) ++requeued;
            it = leases_.erase(it);
        } else {
            ++it;
        }
    }
    stats_.commandsRequeued += requeued;
    if (requeued > 0) scheduleServiceWaiting();
    ensureLeaseSweepScheduled();
}

void Server::ensureSweepScheduled() {
    if (sweepScheduled_) return;
    sweepScheduled_ = true;
    network_->loop().schedule(config_.heartbeatInterval,
                              [this] { sweepWorkers(); });
}

void Server::sweepWorkers() {
    sweepScheduled_ = false;
    const double now = network_->loop().now();
    const double deadline =
        config_.failureMultiplier * config_.heartbeatInterval;
    for (auto it = workers_.begin(); it != workers_.end();) {
        if (now - it->second.lastHeartbeat > deadline) {
            ++stats_.workersFailed;
            const net::NodeId dead = it->first;
            if (wal_) {
                auto& w = walWriter();
                w.write(std::int32_t(dead));
                walAppend(WalRecordType::WorkerGone, w);
            }
            const std::size_t requeuedFromDead =
                applyWorkerDeath(dead, it->second);
            // Drop the dead worker's parked request — but only when the
            // scheduler still attributed in-flight commands to it: dying
            // mid-run is real evidence of death, and without the prune the
            // park queue leaks one entry per such worker. An *idle* parked
            // worker is legitimately silent (no heartbeats without running
            // commands, and its last heartbeat may still list commands that
            // since completed); its park slot is the long-poll contract and
            // must survive the liveness sweep.
            if (requeuedFromDead > 0) pruneParkedRequest(dead);
            // And its buffered lease renewals: renewing on behalf of a
            // worker we just declared dead would only delay recovery.
            for (auto& [ps, byWorker] : summaryBuffers_)
                byWorker.erase(dead);
            it = workers_.erase(it);
        } else {
            ++it;
        }
    }
    if (!workers_.empty()) ensureSweepScheduled();
}

std::size_t Server::applyWorkerDeath(net::NodeId dead,
                                     const WorkerRecord& rec) {
    const auto& hb = rec.lastPayload;
    // Group the dead worker's commands by project server and send each one
    // a failure signal with our cached checkpoints.
    std::map<net::NodeId, WorkerFailedPayload> perServer;
    for (std::size_t i = 0; i < hb.running.size(); ++i) {
        const net::NodeId ps = i < hb.projectServers.size()
                                   ? hb.projectServers[i]
                                   : net::kInvalidNode;
        if (ps == net::kInvalidNode) continue;
        auto& p = perServer[ps];
        p.worker = dead;
        p.commands.push_back(hb.running[i]);
        // Shares the cached buffer into the payload — no copy while hot.
        p.checkpoints.push_back(cachedCheckpointBlob(hb.running[i]));
    }
    std::size_t requeuedFromDead = 0;
    for (auto& [ps, payload] : perServer) {
        if (ps == id()) {
            // We host the project: requeue directly.
            for (std::size_t i = 0; i < payload.commands.size(); ++i)
                if (!payload.checkpoints[i].empty())
                    scheduler_.updateCheckpoint(payload.commands[i],
                                                payload.checkpoints[i]);
            const auto requeued = scheduler_.requeueWorker(dead);
            requeuedFromDead += requeued.size();
            stats_.commandsRequeued += requeued.size();
            for (CommandId cid : requeued) releaseLease(cid);
            if (!requeued.empty() && !recovering_) scheduleServiceWaiting();
        } else if (!recovering_) {
            // Replay never resends: the original signal either arrived (and
            // its effects are the remote server's state) or its loss is the
            // transport layer's fault model, not the WAL's.
            endpoint_.send(ps, payload);
        }
    }
    // If the worker ran commands we host but never heartbeated them
    // (edge case), requeue those too.
    const auto extra = scheduler_.requeueWorker(dead);
    requeuedFromDead += extra.size();
    stats_.commandsRequeued += extra.size();
    for (CommandId cid : extra) releaseLease(cid);
    if (!extra.empty() && !recovering_) scheduleServiceWaiting();
    return requeuedFromDead;
}

SharedBytes Server::cachedCheckpointBlob(CommandId id) {
    if (checkpointMeta_.count(id) == 0) return SharedBytes{};
    auto blob = store_->get(cacheKey(id));
    return blob ? *blob : SharedBytes{};
}

// --- Durability (DESIGN.md "Durability & tiered storage") ----------------

void Server::InputVault::stash(CommandId id, SharedBytes blob) {
    store->put(id, std::move(blob));
}

SharedBytes Server::InputVault::fetch(CommandId id) {
    auto blob = store->get(id);
    COP_ENSURE(blob.has_value(), "input vault: missing payload");
    return *blob;
}

void Server::InputVault::drop(CommandId id) { store->erase(id); }

bool Server::InputVault::holds(CommandId id) const {
    return store->contains(id);
}

std::size_t Server::InputVault::sizeOf(CommandId id) const {
    return store->sizeOf(id);
}

void Server::walAppend(WalRecordType type, const BinaryWriter& w) {
    if (!wal_ || recovering_) return;
    wal_->append(type, w.buffer());
    maybeSnapshot();
}

void Server::maybeSnapshot() {
    const auto every = config_.durability.snapshotEveryRecords;
    if (every == 0 || snapshotScheduled_ || !wal_) return;
    if (wal_->stats().recordsSinceSnapshot < every) return;
    // Deferred to its own event-loop task: a snapshot taken mid-handler
    // could land between a logged record and the mutation it describes.
    snapshotScheduled_ = true;
    network_->loop().schedule(0.0, [this] {
        snapshotScheduled_ = false;
        if (wal_ && wal_->stats().recordsSinceSnapshot >=
                        config_.durability.snapshotEveryRecords)
            wal_->writeSnapshot(snapshotState());
    });
}

std::vector<std::uint8_t> Server::snapshotState() {
    BinaryWriter w;
    w.writeHeader("CPSS", 1);
    w.write(std::uint64_t(commandCounter_));
    w.write(std::uint64_t(nextProjectId_));
    scheduler_.serialize(w);
    w.write(std::uint64_t(completedCommands_.size()));
    for (CommandId id : completedCommands_) w.write(std::uint64_t(id));
    w.write(std::uint64_t(leases_.size()));
    for (const auto& [id, lease] : leases_) {
        w.write(std::uint64_t(id));
        w.write(std::int32_t(lease.worker));
        w.write(lease.expires);
    }
    w.write(std::uint64_t(workers_.size()));
    for (const auto& [wid, rec] : workers_) {
        w.write(std::int32_t(wid));
        w.write(rec.lastHeartbeat);
        rec.lastPayload.serialize(w);
    }
    w.write(std::uint64_t(parkedRequests_.size()));
    for (const auto& p : parkedRequests_) p.serialize(w);
    w.write(std::uint64_t(unparkCursor_));
    w.write(std::uint64_t(checkpointMeta_.size()));
    for (const auto& [id, meta] : checkpointMeta_) {
        w.write(std::uint64_t(id));
        w.write(std::uint64_t(meta.projectId));
        w.write(std::int32_t(meta.projectServer));
        w.writeBytes(cachedCheckpointBlob(id));
    }
    // ServerStats ride along so operator metrics stay continuous.
    w.write(stats_.workloadRequests);
    w.write(stats_.requestsForwarded);
    w.write(stats_.commandsAssigned);
    w.write(stats_.commandsCompleted);
    w.write(stats_.commandsFailed);
    w.write(stats_.workersFailed);
    w.write(stats_.commandsRequeued);
    w.write(stats_.heartbeatsReceived);
    w.write(stats_.duplicateResultsDropped);
    w.write(stats_.leasesExpired);
    w.write(stats_.parkedRequestsDropped);
    w.write(stats_.parkRejections);
    w.write(stats_.clientRequestsShed);
    w.write(stats_.heartbeatSummariesSent);
    w.write(stats_.heartbeatSummariesReceived);
    w.write(stats_.leaseRenewalsAggregated);
    return w.takeBuffer();
}

void Server::restoreSnapshot(std::span<const std::uint8_t> bytes) {
    BinaryReader r(bytes);
    const auto version = r.readHeader("CPSS");
    COP_IO_CHECK(version == 1, "snapshot: unsupported version");
    commandCounter_ = r.read<std::uint64_t>();
    nextProjectId_ = ProjectId(r.read<std::uint64_t>());
    scheduler_.restore(r);
    const auto completed = r.readCount(8);
    for (std::uint64_t i = 0; i < completed; ++i)
        COP_IO_CHECK(
            completedCommands_.insert(r.read<std::uint64_t>()).second,
            "snapshot: duplicate completed id");
    const auto leases = r.readCount(20);
    for (std::uint64_t i = 0; i < leases; ++i) {
        const auto cid = CommandId(r.read<std::uint64_t>());
        Lease lease;
        lease.worker = net::NodeId(r.read<std::int32_t>());
        lease.expires = r.read<double>();
        COP_IO_CHECK(leases_.emplace(cid, lease).second,
                     "snapshot: duplicate lease");
    }
    const auto workerCount = r.readCount(12);
    for (std::uint64_t i = 0; i < workerCount; ++i) {
        const auto wid = net::NodeId(r.read<std::int32_t>());
        WorkerRecord rec;
        rec.lastHeartbeat = r.read<double>();
        rec.lastPayload = HeartbeatPayload::deserialize(r);
        COP_IO_CHECK(workers_.emplace(wid, std::move(rec)).second,
                     "snapshot: duplicate worker");
    }
    const auto parked = r.readCount(8);
    for (std::uint64_t i = 0; i < parked; ++i)
        parkedRequests_.push_back(WorkloadRequestPayload::deserialize(r));
    unparkCursor_ = std::size_t(r.read<std::uint64_t>());
    const auto cached = r.readCount(20);
    for (std::uint64_t i = 0; i < cached; ++i) {
        const auto cid = CommandId(r.read<std::uint64_t>());
        CachedCheckpoint meta;
        meta.projectId = ProjectId(r.read<std::uint64_t>());
        meta.projectServer = net::NodeId(r.read<std::int32_t>());
        COP_IO_CHECK(checkpointMeta_.emplace(cid, meta).second,
                     "snapshot: duplicate cached checkpoint");
        store_->put(cacheKey(cid), SharedBytes(r.readBytes()));
    }
    stats_.workloadRequests = r.read<std::uint64_t>();
    stats_.requestsForwarded = r.read<std::uint64_t>();
    stats_.commandsAssigned = r.read<std::uint64_t>();
    stats_.commandsCompleted = r.read<std::uint64_t>();
    stats_.commandsFailed = r.read<std::uint64_t>();
    stats_.workersFailed = r.read<std::uint64_t>();
    stats_.commandsRequeued = r.read<std::uint64_t>();
    stats_.heartbeatsReceived = r.read<std::uint64_t>();
    stats_.duplicateResultsDropped = r.read<std::uint64_t>();
    stats_.leasesExpired = r.read<std::uint64_t>();
    stats_.parkedRequestsDropped = r.read<std::uint64_t>();
    stats_.parkRejections = r.read<std::uint64_t>();
    stats_.clientRequestsShed = r.read<std::uint64_t>();
    stats_.heartbeatSummariesSent = r.read<std::uint64_t>();
    stats_.heartbeatSummariesReceived = r.read<std::uint64_t>();
    stats_.leaseRenewalsAggregated = r.read<std::uint64_t>();
    COP_IO_CHECK(r.atEnd(), "snapshot: trailing bytes");
}

void Server::applyWalRecord(WalRecordType type,
                            std::span<const std::uint8_t> body) {
    BinaryReader r(body);
    switch (type) {
    case WalRecordType::TenantAdd: {
        const auto pid = ProjectId(r.read<std::uint64_t>());
        TenantConfig cfg;
        cfg.weight = r.read<double>();
        const auto policy = r.read<std::uint8_t>();
        COP_IO_CHECK(policy <= std::uint8_t(ClaimPolicy::LargestFit),
                     "wal: bad claim policy");
        cfg.claimPolicy = ClaimPolicy(policy);
        cfg.maxPendingCommands = std::size_t(r.read<std::uint64_t>());
        cfg.maxPendingBytes = std::size_t(r.read<std::uint64_t>());
        cfg.admissionRetryAfter = r.read<double>();
        const std::string name = r.readString();
        (void)name; // provenance only; projects_ is the application layer
        COP_IO_CHECK(cfg.weight > 0.0, "wal: bad tenant weight");
        COP_IO_CHECK(!scheduler_.hasTenant(pid), "wal: duplicate tenant");
        scheduler_.addTenant(pid, cfg);
        nextProjectId_ = std::max(nextProjectId_, pid + 1);
        break;
    }
    case WalRecordType::Push: {
        const auto tenant = ProjectId(r.read<std::uint64_t>());
        const auto force = r.read<std::uint8_t>();
        CommandSpec spec = CommandSpec::deserialize(r);
        COP_IO_CHECK(scheduler_.hasTenant(tenant),
                     "wal: push for unknown tenant");
        COP_IO_CHECK(spec.projectId == tenant, "wal: push tenant mismatch");
        if ((spec.id >> 40) == std::uint64_t(id()) + 1)
            commandCounter_ = std::max(
                commandCounter_, spec.id & ((std::uint64_t(1) << 40) - 1));
        scheduler_.push(tenant, std::move(spec), force != 0);
        break;
    }
    case WalRecordType::Claim: {
        const auto worker = net::NodeId(r.read<std::int32_t>());
        const int cores = r.read<std::int32_t>();
        const auto nexe = r.readCount(1);
        std::vector<std::string> executables;
        executables.reserve(std::size_t(nexe));
        for (std::uint64_t i = 0; i < nexe; ++i)
            executables.push_back(r.readString());
        const double expires = r.read<double>();
        const auto nids = r.readCount(8);
        std::vector<CommandId> logged;
        logged.reserve(std::size_t(nids));
        for (std::uint64_t i = 0; i < nids; ++i)
            logged.push_back(r.read<std::uint64_t>());
        // Re-run the real DRR claim on the replayed shards; this rebuilds
        // deficits/cursor/ring transitions exactly, then the logged ids
        // cross-check the reproduced schedule.
        auto claimed = scheduler_.claim(executables, cores, worker);
        std::vector<CommandId> fresh;
        for (auto& cmd : claimed) {
            if (completedCommands_.count(cmd.id) > 0) {
                scheduler_.complete(cmd.id);
                leases_.erase(cmd.id);
                continue;
            }
            leases_[cmd.id] = Lease{worker, expires};
            fresh.push_back(cmd.id);
        }
        COP_IO_CHECK(fresh == logged,
                     "wal: claim replay diverged from log");
        stats_.commandsAssigned += fresh.size();
        break;
    }
    case WalRecordType::Complete: {
        const auto cid = CommandId(r.read<std::uint64_t>());
        const auto pid = ProjectId(r.read<std::uint64_t>());
        const bool success = r.read<std::uint8_t>() != 0;
        (void)pid;
        if (completedCommands_.count(cid) > 0) {
            scheduler_.complete(cid);
            leases_.erase(cid);
            ++stats_.duplicateResultsDropped;
            break;
        }
        scheduler_.complete(cid);
        leases_.erase(cid);
        if (success) {
            completedCommands_.insert(cid);
            ++stats_.commandsCompleted;
        } else {
            ++stats_.commandsFailed;
        }
        break;
    }
    case WalRecordType::Requeue: {
        const auto cid = CommandId(r.read<std::uint64_t>());
        const auto reason = r.read<std::uint8_t>();
        COP_IO_CHECK(reason <= 1, "wal: bad requeue reason");
        if (reason == 1) ++stats_.leasesExpired;
        if (scheduler_.requeueCommand(cid)) ++stats_.commandsRequeued;
        leases_.erase(cid);
        break;
    }
    case WalRecordType::RequeueWorker: {
        const auto worker = net::NodeId(r.read<std::int32_t>());
        const auto requeued = scheduler_.requeueWorker(worker);
        stats_.commandsRequeued += requeued.size();
        for (CommandId cid : requeued) leases_.erase(cid);
        break;
    }
    case WalRecordType::Checkpoint: {
        const auto cid = CommandId(r.read<std::uint64_t>());
        scheduler_.updateCheckpoint(
            cid, SharedBytes(util::decode(r.readBytes(), kMaxWalBlobBytes)));
        break;
    }
    case WalRecordType::Park: {
        parkRequest(WorkloadRequestPayload::deserialize(r));
        break;
    }
    case WalRecordType::ParkDrop: {
        pruneParkedRequest(net::NodeId(r.read<std::int32_t>()));
        break;
    }
    case WalRecordType::ParkCursor: {
        const auto cursor = r.read<std::uint64_t>();
        const auto n = r.readCount(4);
        std::vector<WorkloadRequestPayload> next;
        next.reserve(std::size_t(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto worker = net::NodeId(r.read<std::int32_t>());
            auto it = std::find_if(
                parkedRequests_.begin(), parkedRequests_.end(),
                [&](const WorkloadRequestPayload& p) {
                    return p.worker == worker;
                });
            COP_IO_CHECK(it != parkedRequests_.end(),
                         "wal: park cursor names unknown worker");
            next.push_back(std::move(*it));
            parkedRequests_.erase(it);
        }
        // Slots not named were assigned or answered NoWork in the pass.
        parkedRequests_ = std::move(next);
        unparkCursor_ = std::size_t(cursor);
        break;
    }
    case WalRecordType::Renew: {
        const auto worker = net::NodeId(r.read<std::int32_t>());
        const double expires = r.read<double>();
        const auto n = r.readCount(8);
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto cid = CommandId(r.read<std::uint64_t>());
            auto it = leases_.find(cid);
            if (it != leases_.end() && it->second.worker == worker)
                it->second.expires = expires;
        }
        break;
    }
    case WalRecordType::WorkerSeen: {
        const auto worker = net::NodeId(r.read<std::int32_t>());
        const double seen = r.read<double>();
        const bool hasPayload = r.read<std::uint8_t>() != 0;
        auto& rec = workers_[worker];
        rec.lastHeartbeat = seen;
        if (hasPayload) {
            rec.lastPayload = HeartbeatPayload::deserialize(r);
            ++stats_.heartbeatsReceived;
        }
        break;
    }
    case WalRecordType::WorkerGone: {
        const auto worker = net::NodeId(r.read<std::int32_t>());
        auto it = workers_.find(worker);
        COP_IO_CHECK(it != workers_.end(), "wal: unknown worker gone");
        ++stats_.workersFailed;
        applyWorkerDeath(worker, it->second);
        workers_.erase(it);
        break;
    }
    case WalRecordType::CacheAdd: {
        const auto cid = CommandId(r.read<std::uint64_t>());
        CachedCheckpoint meta;
        meta.projectId = ProjectId(r.read<std::uint64_t>());
        meta.projectServer = net::NodeId(r.read<std::int32_t>());
        checkpointMeta_[cid] = meta;
        store_->put(cacheKey(cid),
                    SharedBytes(util::decode(r.readBytes(), kMaxWalBlobBytes)));
        break;
    }
    case WalRecordType::CacheDrop: {
        const auto cid = CommandId(r.read<std::uint64_t>());
        if (checkpointMeta_.erase(cid) > 0) store_->erase(cacheKey(cid));
        break;
    }
    }
    COP_IO_CHECK(r.atEnd(), "wal: trailing bytes in record");
}

std::uint64_t Server::recoverFromWal() {
    COP_REQUIRE(wal_ != nullptr,
                "recoverFromWal requires durability.walEnabled");
    // Records appended this tick have not influenced any delivered message
    // yet (the group-commit flush precedes every send's delivery), so
    // flushing them here models exactly what a crash could not have lost.
    wal_->flush();
    // Wipe the plane: everything below is rebuilt strictly from disk.
    scheduler_ = ShardedScheduler{};
    scheduler_.setVault(&inputVault_);
    store_->clear();
    leases_.clear();
    workers_.clear();
    completedCommands_.clear();
    parkedRequests_.clear();
    unparkCursor_ = 0;
    checkpointMeta_.clear();
    summaryBuffers_.clear();
    commandCounter_ = 0;
    nextProjectId_ = 1;
    stats_ = ServerStats{};
    for (auto& [pid, entry] : projects_) entry.outstanding.clear();

    const auto before = wal_->stats().replayedRecords;
    recovering_ = true;
    try {
        const auto snap = wal_->loadSnapshot();
        if (!snap.empty()) restoreSnapshot(snap);
        wal_->replay([this](WalRecordType t,
                            std::span<const std::uint8_t> b) {
            applyWalRecord(t, b);
        });
    } catch (...) {
        recovering_ = false;
        throw;
    }
    recovering_ = false;

    // outstanding == the plane's unfinished commands, by construction
    // (inserted on submit/push, erased exactly when complete() retires).
    scheduler_.forEachPending([&](ProjectId pid, const CommandSpec& s) {
        auto it = projects_.find(pid);
        if (it != projects_.end()) it->second.outstanding.insert(s.id);
    });
    scheduler_.forEachInFlight(
        [&](ProjectId pid, const CommandSpec& s, net::NodeId) {
            auto it = projects_.find(pid);
            if (it != projects_.end()) it->second.outstanding.insert(s.id);
        });
    ++recoveries_;
    if (!workers_.empty()) ensureSweepScheduled();
    if (!leases_.empty()) ensureLeaseSweepScheduled();
    return wal_->stats().replayedRecords - before;
}

} // namespace cop::core
