#include "core/server.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace cop::core {

/// ProjectContext implementation bound to one hosted project.
class Server::ContextImpl : public ProjectContext {
public:
    ContextImpl(Server& server, ProjectId id) : server_(&server), id_(id) {}

    ProjectId projectId() const override { return id_; }

    net::SimTime now() const override {
        return server_->network_->loop().now();
    }

    CommandId submitCommand(CommandSpec spec) override {
        spec.id = server_->nextCommandId();
        spec.projectId = id_;
        spec.projectServer = server_->id();
        const CommandId cid = spec.id;
        server_->projects_.at(id_).outstanding.insert(cid);
        // Controller reactions to finished commands must never deadlock on
        // the project's own quota: plain submits bypass admission.
        server_->scheduler_.push(id_, std::move(spec), /*force=*/true);
        server_->scheduleServiceWaiting();
        return cid;
    }

    SubmitResult trySubmitCommand(CommandSpec spec) override {
        spec.id = server_->nextCommandId();
        spec.projectId = id_;
        spec.projectServer = server_->id();
        const CommandId cid = spec.id;
        const auto decision =
            server_->scheduler_.push(id_, std::move(spec), /*force=*/false);
        if (!decision.admitted)
            return SubmitResult{0, false, decision.retryAfter};
        server_->projects_.at(id_).outstanding.insert(cid);
        server_->scheduleServiceWaiting();
        return SubmitResult{cid, true, 0.0};
    }

    std::size_t outstandingCommands() const override {
        return server_->projects_.at(id_).outstanding.size();
    }

private:
    Server* server_;
    ProjectId id_;
};

Server::Server(net::OverlayNetwork& network, std::string name,
               net::KeyPair keys, ServerConfig config)
    : network_(&network), node_(network, std::move(name), keys),
      endpoint_(network, node_, config.rpc, config.batch), config_(config) {
    COP_REQUIRE(config.heartbeatInterval > 0.0, "bad heartbeat interval");
    COP_REQUIRE(config.failureMultiplier >= 1.0, "bad failure multiplier");
    COP_REQUIRE(config.leaseMultiplier >= 1.0, "bad lease multiplier");
    COP_REQUIRE(config.summaryWindow >= 0.0, "bad summary window");
    endpoint_.onEnvelope(
        [this](const wire::Envelope& env, const net::Message& msg) {
            handleEnvelope(env, msg);
        });
    endpoint_.onDeliveryFailure(
        [this](const net::Message& failed) { handleDeliveryFailure(failed); });
}

Server::~Server() = default;

void Server::addPeer(net::NodeId peer) {
    COP_REQUIRE(peer != id(), "cannot peer with self");
    if (std::find(peers_.begin(), peers_.end(), peer) == peers_.end())
        peers_.push_back(peer);
}

ProjectId Server::createProject(ProjectSpec spec,
                                std::unique_ptr<Controller> controller) {
    COP_REQUIRE(controller != nullptr, "project needs a controller");
    const ProjectId id = nextProjectId_++;
    TenantConfig tenant;
    tenant.weight = spec.weight;
    tenant.claimPolicy = spec.claimPolicy.value_or(config_.claimPolicy);
    tenant.maxPendingCommands = spec.maxPendingCommands;
    tenant.maxPendingBytes = spec.maxPendingBytes;
    tenant.admissionRetryAfter = spec.admissionRetryAfter;
    scheduler_.addTenant(id, tenant);
    ProjectEntry entry;
    entry.name = std::move(spec.name);
    entry.controller = std::move(controller);
    entry.context = std::make_unique<ContextImpl>(*this, id);
    auto [it, inserted] = projects_.emplace(id, std::move(entry));
    COP_ENSURE(inserted, "duplicate project id");
    it->second.controller->onProjectStart(*it->second.context);
    return id;
}

ProjectId Server::createProject(std::string name,
                                std::unique_ptr<Controller> controller) {
    ProjectSpec spec;
    spec.name = std::move(name);
    return createProject(std::move(spec), std::move(controller));
}

bool Server::projectDone(ProjectId id) const {
    const auto& entry = projects_.at(id);
    return entry.controller->isDone(*entry.context);
}

bool Server::allProjectsDone() const {
    for (const auto& [id, entry] : projects_)
        if (!entry.controller->isDone(*entry.context)) return false;
    return true;
}

std::string Server::projectStatus(ProjectId id) const {
    const auto& entry = projects_.at(id);
    return entry.name + ": " + entry.controller->statusReport(*entry.context);
}

Controller& Server::projectController(ProjectId id) {
    return *projects_.at(id).controller;
}

ServerMetrics Server::metricsSnapshot() const {
    ServerMetrics m;
    m.server = stats_;
    m.scheduler = scheduler_.stats();
    m.wire = endpoint_.stats();
    m.tenants.reserve(projects_.size());
    for (const auto& [pid, entry] : projects_) {
        TenantMetrics t;
        t.id = pid;
        t.name = entry.name;
        t.config = scheduler_.tenantConfig(pid);
        t.counters = scheduler_.tenantStats(pid);
        t.pending = scheduler_.pendingOf(pid);
        t.pendingBytes = scheduler_.pendingBytesOf(pid);
        t.inFlight = scheduler_.inFlightOf(pid);
        t.outstanding = entry.outstanding.size();
        t.done = entry.controller->isDone(*entry.context);
        m.tenants.push_back(std::move(t));
    }
    return m;
}

CommandId Server::nextCommandId() {
    // Server id in the high bits keeps ids globally unique across project
    // servers sharing the same worker pool.
    return (std::uint64_t(id()) + 1) << 40 | ++commandCounter_;
}

void Server::handleEnvelope(const wire::Envelope& env,
                            const net::Message& msg) {
    std::visit(
        [&](const auto& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, WorkloadRequestPayload>)
                handleWorkloadRequest(payload, msg);
            else if constexpr (std::is_same_v<T, CommandOutputPayload>)
                handleCommandOutput(payload);
            else if constexpr (std::is_same_v<T, HeartbeatPayload>)
                handleHeartbeat(payload);
            else if constexpr (std::is_same_v<T, CheckpointPayload>)
                handleCheckpoint(payload);
            else if constexpr (std::is_same_v<T, WorkerFailedPayload>)
                handleWorkerFailed(payload);
            else if constexpr (std::is_same_v<T, LeaseRenewPayload>)
                handleLeaseRenew(payload);
            else if constexpr (std::is_same_v<T, HeartbeatSummaryPayload>)
                handleHeartbeatSummary(payload);
            else if constexpr (std::is_same_v<T, ClientRequestPayload>)
                handleClientRequest(payload, msg);
            else
                COP_LOG_WARN("server")
                    << name() << ": unexpected message type "
                    << net::messageTypeName(env.type);
        },
        env.payload);
}

std::vector<CommandSpec> Server::claimFor(
    const WorkloadRequestPayload& request) {
    auto claimed =
        scheduler_.claim(request.executables, request.cores, request.worker);
    std::vector<CommandSpec> fresh;
    fresh.reserve(claimed.size());
    for (auto& cmd : claimed) {
        if (completedCommands_.count(cmd.id) > 0) {
            // Stale re-execution of a command whose first run already
            // delivered its result (requeue raced with recovery).
            scheduler_.complete(cmd.id);
            releaseLease(cmd.id);
            continue;
        }
        grantLease(cmd.id, request.worker);
        fresh.push_back(std::move(cmd));
    }
    return fresh;
}

void Server::handleWorkloadRequest(const WorkloadRequestPayload& request,
                                   const net::Message& msg) {
    ++stats_.workloadRequests;

    // Track the worker if it reports to us directly (its closest server).
    if (msg.source == request.worker) {
        auto& rec = workers_[request.worker];
        rec.lastHeartbeat = network_->loop().now();
        ensureSweepScheduled();
    }

    auto claimed = claimFor(request);
    if (!claimed.empty()) {
        stats_.commandsAssigned += claimed.size();
        WorkloadAssignPayload assign;
        assign.commands = std::move(claimed);
        endpoint_.send(request.worker, assign);
        return;
    }

    // Relay towards the first peer server not yet visited (paper §2.2:
    // "routing of requests ... to the first server with available
    // commands").
    WorkloadRequestPayload fwd = request;
    fwd.visited.push_back(id());
    for (net::NodeId peer : peers_) {
        if (std::find(fwd.visited.begin(), fwd.visited.end(), peer) !=
            fwd.visited.end())
            continue;
        ++stats_.requestsForwarded;
        endpoint_.send(peer, fwd);
        return;
    }
    if (config_.parkRequests && hostsUnfinishedProject()) {
        // Park-queue backpressure: a worker that already holds a parked
        // slot may always refresh it, but beyond the cap new workers are
        // bounced with an explicit retry-after instead of growing the
        // queue (and the per-slot sweep cost) without bound.
        const bool alreadyParked = std::any_of(
            parkedRequests_.begin(), parkedRequests_.end(),
            [&](const auto& p) { return p.worker == request.worker; });
        if (!alreadyParked && config_.maxParkedRequests > 0 &&
            parkedRequests_.size() >= config_.maxParkedRequests) {
            ++stats_.parkRejections;
            endpoint_.send(request.worker,
                           NoWorkPayload{request.worker,
                                         config_.parkRetryAfter});
            return;
        }
        parkRequest(std::move(fwd));
        return;
    }
    endpoint_.send(request.worker, NoWorkPayload{request.worker});
}

void Server::pruneParkedRequest(net::NodeId dead) {
    const auto parkedEnd = std::remove_if(
        parkedRequests_.begin(), parkedRequests_.end(),
        [dead](const WorkloadRequestPayload& p) { return p.worker == dead; });
    stats_.parkedRequestsDropped +=
        std::uint64_t(parkedRequests_.end() - parkedEnd);
    parkedRequests_.erase(parkedEnd, parkedRequests_.end());
}

void Server::parkRequest(WorkloadRequestPayload request) {
    // One parked slot per worker: a re-sent request (retransmit that beat
    // its ack, or a poll after a timeout) replaces the stale one instead
    // of producing double assignments later.
    for (auto& parked : parkedRequests_) {
        if (parked.worker == request.worker) {
            parked = std::move(request);
            return;
        }
    }
    parkedRequests_.push_back(std::move(request));
}

bool Server::hostsUnfinishedProject() const {
    for (const auto& [id, entry] : projects_)
        if (!entry.controller->isDone(*entry.context)) return true;
    return false;
}

void Server::scheduleServiceWaiting() {
    if (servicePending_ || parkedRequests_.empty()) return;
    servicePending_ = true;
    network_->loop().schedule(0.0, [this] {
        servicePending_ = false;
        serviceWaitingRequests();
    });
}

void Server::serviceWaitingRequests() {
    if (parkedRequests_.empty()) return;
    // Rotate the starting slot each pass: when fresh work only covers a
    // few of the parked workers, the ones at the head of the list must not
    // monopolize every refill (the claim itself is tenant-fair via DRR;
    // this keeps it worker-fair too).
    const std::size_t n = parkedRequests_.size();
    const std::size_t start = unparkCursor_ % n;
    std::vector<WorkloadRequestPayload> stillParked;
    for (std::size_t k = 0; k < n; ++k) {
        auto& request = parkedRequests_[(start + k) % n];
        auto claimed = claimFor(request);
        if (!claimed.empty()) {
            stats_.commandsAssigned += claimed.size();
            WorkloadAssignPayload assign;
            assign.commands = std::move(claimed);
            endpoint_.send(request.worker, assign);
        } else if (hostsUnfinishedProject()) {
            stillParked.push_back(std::move(request));
        } else {
            endpoint_.send(request.worker, NoWorkPayload{request.worker});
        }
    }
    parkedRequests_ = std::move(stillParked);
    unparkCursor_ = start + 1;
}

void Server::handleCommandOutput(const CommandOutputPayload& payload) {
    // Drop any cached checkpoints: the command is over.
    checkpointCache_.erase(payload.result.commandId);

    if (projects_.find(payload.result.projectId) != projects_.end()) {
        dispatchResult(payload.result);
        return;
    }
    // Not ours: relay towards the project server named in the payload.
    if (payload.projectServer == net::kInvalidNode ||
        payload.projectServer == id()) {
        COP_LOG_WARN("server") << name() << ": orphan command output "
                               << payload.result.commandId;
        return;
    }
    endpoint_.send(payload.projectServer, payload);
}

void Server::dispatchResult(CommandResult result) {
    if (completedCommands_.count(result.commandId) > 0) {
        // A requeued copy of this command also ran to completion; the
        // first result won. Clear any in-flight record so the re-execution
        // does not linger (and its lease with it).
        scheduler_.complete(result.commandId);
        releaseLease(result.commandId);
        ++stats_.duplicateResultsDropped;
        return;
    }
    auto spec = scheduler_.complete(result.commandId);
    releaseLease(result.commandId);
    auto& entry = projects_.at(result.projectId);
    entry.outstanding.erase(result.commandId);
    if (result.success) {
        completedCommands_.insert(result.commandId);
        ++stats_.commandsCompleted;
        entry.controller->onCommandFinished(*entry.context, result);
    } else {
        ++stats_.commandsFailed;
        if (spec)
            entry.controller->onCommandFailed(*entry.context, *spec);
    }
}

void Server::handleHeartbeat(const HeartbeatPayload& hb) {
    ++stats_.heartbeatsReceived;
    auto& rec = workers_[hb.worker];
    rec.lastHeartbeat = network_->loop().now();
    rec.lastPayload = hb;
    ensureSweepScheduled();

    // Renew leases: locally for commands we host; renewals towards remote
    // project servers are buffered and flushed as one HeartbeatSummary
    // digest per server per aggregation window (heartbeats themselves
    // never leave the closest server, paper §2.3 — and with aggregation,
    // neither does a per-heartbeat renewal message).
    std::map<net::NodeId, std::vector<CommandId>> remote;
    for (std::size_t i = 0; i < hb.running.size(); ++i) {
        const net::NodeId ps = i < hb.projectServers.size()
                                   ? hb.projectServers[i]
                                   : net::kInvalidNode;
        if (ps == id()) {
            renewLease(hb.running[i], hb.worker);
        } else if (ps != net::kInvalidNode) {
            remote[ps].push_back(hb.running[i]);
        }
    }
    for (auto& [ps, commands] : remote)
        bufferLeaseRenewals(ps, hb.worker, std::move(commands));
}

void Server::bufferLeaseRenewals(net::NodeId projectServer,
                                 net::NodeId worker,
                                 std::vector<CommandId> commands) {
    if (commands.empty()) return;
    stats_.leaseRenewalsAggregated += commands.size();
    // A newer heartbeat supersedes the older one within the window: the
    // flush renews each lease once either way.
    summaryBuffers_[projectServer][worker] = std::move(commands);
    ensureSummaryFlushScheduled();
}

void Server::ensureSummaryFlushScheduled() {
    if (summaryFlushScheduled_ || summaryBuffers_.empty()) return;
    summaryFlushScheduled_ = true;
    network_->loop().schedule(summaryWindow(),
                              [this] { flushHeartbeatSummaries(); });
}

void Server::flushHeartbeatSummaries() {
    summaryFlushScheduled_ = false;
    for (auto& [ps, byWorker] : summaryBuffers_) {
        if (byWorker.empty()) continue; // all renewers died this window
        HeartbeatSummaryPayload summary;
        summary.edge = id();
        for (auto& [worker, commands] : byWorker) {
            summary.workers.push_back(worker);
            summary.counts.push_back(std::uint32_t(commands.size()));
            summary.commands.insert(summary.commands.end(), commands.begin(),
                                    commands.end());
        }
        ++stats_.heartbeatSummariesSent;
        // Unreliable like the LeaseRenew it replaces: a lost digest is
        // covered by the next window; leases span several windows.
        endpoint_.send(ps, summary, /*reliable=*/false);
    }
    summaryBuffers_.clear();
}

void Server::handleHeartbeatSummary(const HeartbeatSummaryPayload& summary) {
    ++stats_.heartbeatSummariesReceived;
    std::size_t k = 0;
    for (std::size_t i = 0; i < summary.workers.size(); ++i)
        for (std::uint32_t j = 0; j < summary.counts[i]; ++j, ++k)
            renewLease(summary.commands[k], summary.workers[i]);
}

void Server::handleLeaseRenew(const LeaseRenewPayload& payload) {
    for (CommandId id : payload.commands)
        renewLease(id, payload.worker);
}

void Server::handleCheckpoint(const CheckpointPayload& cp) {
    if (!config_.cacheCheckpoints) return;
    // If we host the project ourselves, feed the checkpoint straight into
    // the in-flight record; otherwise cache it for failure handoff.
    if (projects_.find(cp.projectId) != projects_.end()) {
        scheduler_.updateCheckpoint(cp.commandId, cp.blob);
        return;
    }
    checkpointCache_[cp.commandId] = cp;
}

void Server::handleWorkerFailed(const WorkerFailedPayload& payload) {
    for (std::size_t i = 0; i < payload.commands.size(); ++i) {
        if (i < payload.checkpoints.size() && !payload.checkpoints[i].empty())
            scheduler_.updateCheckpoint(payload.commands[i],
                                        payload.checkpoints[i]);
    }
    const auto requeued = scheduler_.requeueWorker(payload.worker);
    stats_.commandsRequeued += requeued.size();
    for (CommandId id : requeued) releaseLease(id);
    if (!requeued.empty()) {
        scheduleServiceWaiting();
        // The worker died holding our commands; if it also held a parked
        // long-poll slot here (request raced ahead of its final outputs),
        // drop it — nobody will answer for a dead worker.
        pruneParkedRequest(payload.worker);
    }
    COP_LOG_INFO("server") << name() << ": worker "
                           << network_->node(payload.worker).name()
                           << " failed; requeued " << requeued.size()
                           << " commands";
}

void Server::handleClientRequest(const ClientRequestPayload& request,
                                 const net::Message& msg) {
    std::string reply;
    auto it = projects_.find(request.projectId);
    if (it == projects_.end()) {
        reply = "unknown project " + std::to_string(request.projectId);
    } else if (request.command.empty() || request.command == "status") {
        reply = projectStatus(request.projectId);
    } else {
        // Control commands can fan out into fresh submissions; when the
        // tenant is already over its admission quota the request is shed
        // up front with a retry-after instead of reaching the controller.
        const auto gate = scheduler_.admit(request.projectId, CommandSpec{});
        if (!gate.admitted) {
            ++stats_.clientRequestsShed;
            ClientResponsePayload shed;
            shed.text = "busy: project " + std::to_string(request.projectId) +
                        " over admission quota";
            shed.accepted = false;
            shed.retryAfterSeconds = gate.retryAfter;
            endpoint_.send(msg.source, shed);
            return;
        }
        // Control command: routed to the project's controller (dynamic
        // parameter changes, §3.2 "future versions").
        reply = it->second.controller->handleClientCommand(
            *it->second.context, request.command);
    }
    endpoint_.send(msg.source, ClientResponsePayload{reply});
}

void Server::handleDeliveryFailure(const net::Message& failed) {
    // A reliable send exhausted its retransmits. For assignments, put the
    // commands straight back on the queue (the worker never confirmed
    // receiving them); everything else is covered by leases and polling.
    if (failed.type != net::MessageType::WorkloadAssign) return;
    const auto decoded = wire::decodePayload(failed);
    if (!decoded) return;
    const auto& assign = std::get<WorkloadAssignPayload>(*decoded);
    std::size_t requeued = 0;
    for (const auto& cmd : assign.commands) {
        const auto holder = scheduler_.holderOf(cmd.id);
        if (holder && *holder == failed.destination &&
            scheduler_.requeueCommand(cmd.id)) {
            releaseLease(cmd.id);
            ++requeued;
        }
    }
    stats_.commandsRequeued += requeued;
    if (requeued > 0) scheduleServiceWaiting();
}

void Server::grantLease(CommandId id, net::NodeId worker) {
    leases_[id] = Lease{worker, network_->loop().now() + leaseDuration()};
    ensureLeaseSweepScheduled();
}

void Server::renewLease(CommandId id, net::NodeId worker) {
    auto it = leases_.find(id);
    if (it == leases_.end() || it->second.worker != worker) return;
    it->second.expires = network_->loop().now() + leaseDuration();
}

void Server::ensureLeaseSweepScheduled() {
    if (leaseSweepScheduled_ || leases_.empty()) return;
    leaseSweepScheduled_ = true;
    network_->loop().schedule(config_.heartbeatInterval,
                              [this] { sweepLeases(); });
}

void Server::sweepLeases() {
    leaseSweepScheduled_ = false;
    const double now = network_->loop().now();
    std::size_t requeued = 0;
    for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.expires <= now) {
            ++stats_.leasesExpired;
            if (scheduler_.requeueCommand(it->first)) ++requeued;
            it = leases_.erase(it);
        } else {
            ++it;
        }
    }
    stats_.commandsRequeued += requeued;
    if (requeued > 0) scheduleServiceWaiting();
    ensureLeaseSweepScheduled();
}

void Server::ensureSweepScheduled() {
    if (sweepScheduled_) return;
    sweepScheduled_ = true;
    network_->loop().schedule(config_.heartbeatInterval,
                              [this] { sweepWorkers(); });
}

void Server::sweepWorkers() {
    sweepScheduled_ = false;
    const double now = network_->loop().now();
    const double deadline =
        config_.failureMultiplier * config_.heartbeatInterval;
    for (auto it = workers_.begin(); it != workers_.end();) {
        if (now - it->second.lastHeartbeat > deadline) {
            ++stats_.workersFailed;
            const net::NodeId dead = it->first;
            const auto& hb = it->second.lastPayload;
            // Group the dead worker's commands by project server and send
            // each one a failure signal with our cached checkpoints.
            std::map<net::NodeId, WorkerFailedPayload> perServer;
            for (std::size_t i = 0; i < hb.running.size(); ++i) {
                const net::NodeId ps = i < hb.projectServers.size()
                                           ? hb.projectServers[i]
                                           : net::kInvalidNode;
                if (ps == net::kInvalidNode) continue;
                auto& p = perServer[ps];
                p.worker = dead;
                p.commands.push_back(hb.running[i]);
                auto cpIt = checkpointCache_.find(hb.running[i]);
                // Shares the cached buffer into the payload — no copy.
                p.checkpoints.push_back(cpIt != checkpointCache_.end()
                                            ? cpIt->second.blob
                                            : SharedBytes{});
            }
            std::size_t requeuedFromDead = 0;
            for (auto& [ps, payload] : perServer) {
                if (ps == id()) {
                    // We host the project: requeue directly.
                    for (std::size_t i = 0; i < payload.commands.size(); ++i)
                        if (!payload.checkpoints[i].empty())
                            scheduler_.updateCheckpoint(payload.commands[i],
                                                        payload.checkpoints[i]);
                    const auto requeued = scheduler_.requeueWorker(dead);
                    requeuedFromDead += requeued.size();
                    stats_.commandsRequeued += requeued.size();
                    for (CommandId cid : requeued) releaseLease(cid);
                    if (!requeued.empty()) scheduleServiceWaiting();
                } else {
                    endpoint_.send(ps, payload);
                }
            }
            // If the worker ran commands we host but never heartbeated them
            // (edge case), requeue those too.
            const auto extra = scheduler_.requeueWorker(dead);
            requeuedFromDead += extra.size();
            stats_.commandsRequeued += extra.size();
            for (CommandId cid : extra) releaseLease(cid);
            if (!extra.empty()) scheduleServiceWaiting();
            // Drop the dead worker's parked request — but only when the
            // scheduler still attributed in-flight commands to it: dying
            // mid-run is real evidence of death, and without the prune the
            // park queue leaks one entry per such worker. An *idle* parked
            // worker is legitimately silent (no heartbeats without running
            // commands, and its last heartbeat may still list commands that
            // since completed); its park slot is the long-poll contract and
            // must survive the liveness sweep.
            if (requeuedFromDead > 0) pruneParkedRequest(dead);
            // And its buffered lease renewals: renewing on behalf of a
            // worker we just declared dead would only delay recovery.
            for (auto& [ps, byWorker] : summaryBuffers_)
                byWorker.erase(dead);
            it = workers_.erase(it);
        } else {
            ++it;
        }
    }
    if (!workers_.empty()) ensureSweepScheduled();
}

} // namespace cop::core
