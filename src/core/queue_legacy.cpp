#include "core/queue_legacy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cop::core {

void LegacyCommandQueue::push(CommandSpec cmd) {
    COP_REQUIRE(cmd.id != 0, "command needs an id");
    COP_REQUIRE(cmd.preferredCores >= 1, "command needs >= 1 core");
    // Keep the queue ordered by priority (descending), FIFO within a
    // priority level: insert before the first lower-priority command.
    auto it = pending_.begin();
    while (it != pending_.end() && it->priority >= cmd.priority) ++it;
    pending_.insert(it, std::move(cmd));
}

bool LegacyCommandQueue::hasWorkFor(
    const std::vector<std::string>& executables) const {
    for (const auto& cmd : pending_)
        if (std::find(executables.begin(), executables.end(),
                      cmd.executable) != executables.end())
            return true;
    return false;
}

std::vector<CommandSpec> LegacyCommandQueue::claim(
    const std::vector<std::string>& executables, int maxCores,
    net::NodeId worker) {
    std::vector<CommandSpec> claimed;
    int coresLeft = maxCores;
    for (auto it = pending_.begin(); it != pending_.end() && coresLeft > 0;) {
        const bool runnable =
            std::find(executables.begin(), executables.end(),
                      it->executable) != executables.end();
        if (runnable && it->preferredCores <= coresLeft) {
            coresLeft -= it->preferredCores;
            inFlight_[it->id] = InFlight{*it, worker};
            claimed.push_back(std::move(*it));
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    return claimed;
}

std::optional<CommandSpec> LegacyCommandQueue::complete(CommandId id) {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) return std::nullopt;
    CommandSpec spec = std::move(it->second.spec);
    inFlight_.erase(it);
    return spec;
}

std::vector<CommandId> LegacyCommandQueue::requeueWorker(net::NodeId worker) {
    std::vector<CommandId> requeued;
    for (auto it = inFlight_.begin(); it != inFlight_.end();) {
        if (it->second.worker == worker) {
            requeued.push_back(it->first);
            // Requeued commands go to the head of their priority level so
            // recovery work is not starved by newly submitted commands.
            auto pos = pending_.begin();
            while (pos != pending_.end() &&
                   pos->priority > it->second.spec.priority)
                ++pos;
            pending_.insert(pos, std::move(it->second.spec));
            it = inFlight_.erase(it);
        } else {
            ++it;
        }
    }
    return requeued;
}

bool LegacyCommandQueue::requeueCommand(CommandId id) {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) return false;
    auto pos = pending_.begin();
    while (pos != pending_.end() && pos->priority > it->second.spec.priority)
        ++pos;
    pending_.insert(pos, std::move(it->second.spec));
    inFlight_.erase(it);
    return true;
}

void LegacyCommandQueue::updateCheckpoint(
    CommandId id, std::vector<std::uint8_t> checkpoint) {
    auto it = inFlight_.find(id);
    if (it != inFlight_.end())
        it->second.spec.input = std::move(checkpoint);
}

std::optional<net::NodeId> LegacyCommandQueue::holderOf(CommandId id) const {
    auto it = inFlight_.find(id);
    if (it == inFlight_.end()) return std::nullopt;
    return it->second.worker;
}

} // namespace cop::core
