#pragma once

/// \file envelope.hpp
/// Typed RPC layer over the overlay network. An Endpoint owns a node's
/// message handling: outgoing payload structs are serialized and tagged
/// with their message type in one place, incoming messages are decoded
/// into a variant (`AnyPayload`) and dispatched as an Envelope, and the
/// reliability machinery — end-to-end acks, capped-exponential-backoff
/// retransmits with seeded jitter, duplicate suppression by message id —
/// lives entirely below the application protocol. Server, Worker and
/// Client speak typed payloads; none of them touch raw byte vectors.
///
/// Retransmits reuse the original message id, so the receiver's dedup
/// window makes redelivery idempotent; acks are sent for every copy of an
/// ack-requiring message (the previous ack may itself have been lost).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <variant>
#include <vector>

#include "core/wire.hpp"
#include "net/backoff.hpp"
#include "net/overlay.hpp"
#include "util/random.hpp"

namespace cop::core::wire {

/// Every framework payload that can cross the overlay.
using AnyPayload =
    std::variant<WorkloadRequestPayload, WorkloadAssignPayload,
                 HeartbeatPayload, CheckpointPayload, CommandOutputPayload,
                 WorkerFailedPayload, LeaseRenewPayload, NoWorkPayload,
                 ClientRequestPayload, ClientResponsePayload,
                 HeartbeatSummaryPayload, AckPayload, BatchPayload>;

/// A decoded incoming message.
struct Envelope {
    net::NodeId from = net::kInvalidNode;
    std::uint64_t messageId = 0;
    net::MessageType type = net::MessageType::Heartbeat;
    AnyPayload payload;
};

/// Decodes a raw message's payload by its type tag; nullopt when the type
/// is unknown or the bytes do not parse.
std::optional<AnyPayload> decodePayload(const net::Message& msg);

/// Reliability knobs for ack-requiring sends.
struct RetryPolicy {
    net::BackoffPolicy backoff{10.0, 2.0, 120.0, 0.2};
    int maxAttempts = 6; ///< total transmissions before giving up
};

/// Nagle-style transmit coalescing: outgoing envelopes are queued per
/// destination and flushed as one Batch frame when the queue crosses a
/// count/size threshold or a short timer fires. Acks (and any other
/// control payload queued in the same window — LeaseRenew, heartbeats)
/// piggyback on the next flush instead of paying their own frame; the
/// separate ack delay bounds ack latency on otherwise idle links (the
/// default 0 flushes a lone ack in the same event-loop tick it was
/// generated, so sparse-load ack latency is unchanged).
struct BatchPolicy {
    bool enabled = true;
    std::size_t maxEnvelopes = 16;  ///< flush when this many are queued
    std::size_t maxBytes = 16384;   ///< flush when payload bytes exceed this
    double flushDelay = 0.02;       ///< seconds a queued envelope may wait
    double ackFlushDelay = 0.0;     ///< standalone-ack latency bound
};

struct EndpointStats {
    std::uint64_t sent = 0;              ///< distinct messages sent
    std::uint64_t acksSent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t duplicatesDropped = 0; ///< redeliveries suppressed
    std::uint64_t deliveriesFailed = 0;  ///< gave up after maxAttempts
    /// Malformed envelopes dropped: payload failed to parse (truncated,
    /// corrupt length prefix) or carried trailing garbage past the
    /// decoded payload. Never silently delivered.
    std::uint64_t malformedDropped = 0;
    // --- Transmit coalescing ---------------------------------------------
    std::uint64_t batchesSent = 0;       ///< Batch frames put on the wire
    std::uint64_t envelopesBatched = 0;  ///< sub-envelopes riding batches
    std::uint64_t singletonsSent = 0;    ///< flushes with one queued envelope
    std::uint64_t acksPiggybacked = 0;   ///< acks that rode a data batch
    /// Flush-trigger breakdown.
    std::uint64_t flushOnCount = 0;
    std::uint64_t flushOnBytes = 0;
    std::uint64_t flushOnTimer = 0;
    std::uint64_t flushOnAckTimer = 0;
};

/// The typed, reliable endpoint attached to one overlay node. Installs
/// itself as the node's message handler.
class Endpoint {
public:
    using Handler = std::function<void(const Envelope&, const net::Message&)>;
    using FailureHandler = std::function<void(const net::Message&)>;

    Endpoint(net::OverlayNetwork& net, net::Node& node, RetryPolicy policy = {},
             BatchPolicy batch = {});

    /// Registers the application dispatch for decoded envelopes.
    void onEnvelope(Handler handler) { handler_ = std::move(handler); }
    /// Called when a reliable send exhausts its attempts; receives the
    /// undelivered message (same id and payload as originally sent).
    void onDeliveryFailure(FailureHandler handler) {
        failureHandler_ = std::move(handler);
    }

    /// Sends a typed payload. Reliable sends request an end-to-end ack and
    /// retransmit with backoff until acked or maxAttempts transmissions.
    /// Returns the message id (0 if the endpoint is shut down).
    template <typename T>
    std::uint64_t send(net::NodeId to, const T& payload, bool reliable = true) {
        return sendRaw(T::kType, to, payload.encode(), reliable);
    }

    std::uint64_t sendRaw(net::MessageType type, net::NodeId to,
                          std::vector<std::uint8_t> payload, bool reliable);

    /// Re-targets an undelivered message (from onDeliveryFailure) to a new
    /// destination under a fresh id, reliably. Used for server failover.
    std::uint64_t resend(const net::Message& failed, net::NodeId newDestination);

    /// Crash semantics: stop receiving, sending and retrying. Pending
    /// retransmit and flush timers are cancelled; queued envelopes die
    /// with the node.
    void shutdown();
    bool isShutdown() const { return down_; }

    /// Crash-and-restart semantics: drops every retransmit entry, queued
    /// envelope and the dedup window (all volatile state a process loses),
    /// then brings the endpoint back up. Cumulative stats_ survive — the
    /// restarted process still reports lifetime counters in tests.
    void reset();

    /// Observer called with (sim-seconds between first transmission and
    /// its ack) for every acked reliable send. Benches/tests use it for
    /// ack-latency percentiles.
    void onAckLatency(std::function<void(double)> observer) {
        ackLatencyObserver_ = std::move(observer);
    }

    /// Flushes every per-destination transmit queue immediately (e.g. at
    /// the end of a drive loop). No-op when batching is disabled.
    void flushAll();

    const EndpointStats& stats() const { return stats_; }
    const BatchPolicy& batchPolicy() const { return batch_; }
    net::NodeId id() const;

private:
    struct Pending {
        net::Message msg;
        int attempt = 1; ///< transmissions so far
        net::EventLoop::TimerId timer = 0;
        double firstSentAt = 0.0; ///< for the ack-latency observer
    };

    /// Per-destination transmit queue (one per overlay "link" this
    /// endpoint talks over; routing below may still multiplex hops).
    struct TxQueue {
        std::vector<BatchEntry> entries;
        std::size_t payloadBytes = 0;
        net::EventLoop::TimerId timer = 0;
        double deadline = 0.0; ///< absolute flush time while timer != 0
    };

    enum class FlushReason { Count, Bytes, Timer, AckTimer };

    void receive(const net::Message& msg);
    void receiveBatch(const net::Message& msg);
    void armRetry(std::uint64_t id);
    void onRetryTimer(std::uint64_t id);
    bool seen(std::uint64_t id) const { return seenSet_.count(id) > 0; }
    void rememberSeen(std::uint64_t id);

    /// Queues an already-id-stamped message for its destination and
    /// applies the flush policy (threshold flush or timer arm).
    void enqueue(net::Message msg, bool isAck);
    void flush(net::NodeId dest, FlushReason reason);

    net::OverlayNetwork* net_;
    net::Node* node_;
    RetryPolicy policy_;
    BatchPolicy batch_;
    Rng rng_;
    Handler handler_;
    FailureHandler failureHandler_;
    std::function<void(double)> ackLatencyObserver_;
    std::map<std::uint64_t, Pending> pending_;
    std::map<net::NodeId, TxQueue> queues_;
    std::unordered_set<std::uint64_t> seenSet_;
    std::deque<std::uint64_t> seenOrder_; ///< bounds the dedup window
    EndpointStats stats_;
    bool down_ = false;
};

} // namespace cop::core::wire
