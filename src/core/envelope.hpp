#pragma once

/// \file envelope.hpp
/// Typed RPC layer over the overlay network. An Endpoint owns a node's
/// message handling: outgoing payload structs are serialized and tagged
/// with their message type in one place, incoming messages are decoded
/// into a variant (`AnyPayload`) and dispatched as an Envelope, and the
/// reliability machinery — end-to-end acks, capped-exponential-backoff
/// retransmits with seeded jitter, duplicate suppression by message id —
/// lives entirely below the application protocol. Server, Worker and
/// Client speak typed payloads; none of them touch raw byte vectors.
///
/// Retransmits reuse the original message id, so the receiver's dedup
/// window makes redelivery idempotent; acks are sent for every copy of an
/// ack-requiring message (the previous ack may itself have been lost).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <variant>
#include <vector>

#include "core/wire.hpp"
#include "net/backoff.hpp"
#include "net/overlay.hpp"
#include "util/random.hpp"

namespace cop::core::wire {

/// Every framework payload that can cross the overlay.
using AnyPayload =
    std::variant<WorkloadRequestPayload, WorkloadAssignPayload,
                 HeartbeatPayload, CheckpointPayload, CommandOutputPayload,
                 WorkerFailedPayload, LeaseRenewPayload, NoWorkPayload,
                 ClientRequestPayload, ClientResponsePayload, AckPayload>;

/// A decoded incoming message.
struct Envelope {
    net::NodeId from = net::kInvalidNode;
    std::uint64_t messageId = 0;
    net::MessageType type = net::MessageType::Heartbeat;
    AnyPayload payload;
};

/// Decodes a raw message's payload by its type tag; nullopt when the type
/// is unknown or the bytes do not parse.
std::optional<AnyPayload> decodePayload(const net::Message& msg);

/// Reliability knobs for ack-requiring sends.
struct RetryPolicy {
    net::BackoffPolicy backoff{10.0, 2.0, 120.0, 0.2};
    int maxAttempts = 6; ///< total transmissions before giving up
};

struct EndpointStats {
    std::uint64_t sent = 0;              ///< distinct messages sent
    std::uint64_t acksSent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t duplicatesDropped = 0; ///< redeliveries suppressed
    std::uint64_t deliveriesFailed = 0;  ///< gave up after maxAttempts
    /// Malformed envelopes dropped: payload failed to parse (truncated,
    /// corrupt length prefix) or carried trailing garbage past the
    /// decoded payload. Never silently delivered.
    std::uint64_t malformedDropped = 0;
};

/// The typed, reliable endpoint attached to one overlay node. Installs
/// itself as the node's message handler.
class Endpoint {
public:
    using Handler = std::function<void(const Envelope&, const net::Message&)>;
    using FailureHandler = std::function<void(const net::Message&)>;

    Endpoint(net::OverlayNetwork& net, net::Node& node, RetryPolicy policy = {});

    /// Registers the application dispatch for decoded envelopes.
    void onEnvelope(Handler handler) { handler_ = std::move(handler); }
    /// Called when a reliable send exhausts its attempts; receives the
    /// undelivered message (same id and payload as originally sent).
    void onDeliveryFailure(FailureHandler handler) {
        failureHandler_ = std::move(handler);
    }

    /// Sends a typed payload. Reliable sends request an end-to-end ack and
    /// retransmit with backoff until acked or maxAttempts transmissions.
    /// Returns the message id (0 if the endpoint is shut down).
    template <typename T>
    std::uint64_t send(net::NodeId to, const T& payload, bool reliable = true) {
        return sendRaw(T::kType, to, payload.encode(), reliable);
    }

    std::uint64_t sendRaw(net::MessageType type, net::NodeId to,
                          std::vector<std::uint8_t> payload, bool reliable);

    /// Re-targets an undelivered message (from onDeliveryFailure) to a new
    /// destination under a fresh id, reliably. Used for server failover.
    std::uint64_t resend(const net::Message& failed, net::NodeId newDestination);

    /// Crash semantics: stop receiving, sending and retrying. Pending
    /// retransmit timers are cancelled.
    void shutdown();
    bool isShutdown() const { return down_; }

    const EndpointStats& stats() const { return stats_; }
    net::NodeId id() const;

private:
    struct Pending {
        net::Message msg;
        int attempt = 1; ///< transmissions so far
        net::EventLoop::TimerId timer = 0;
    };

    void receive(const net::Message& msg);
    void armRetry(std::uint64_t id);
    void onRetryTimer(std::uint64_t id);
    bool seen(std::uint64_t id) const { return seenSet_.count(id) > 0; }
    void rememberSeen(std::uint64_t id);

    net::OverlayNetwork* net_;
    net::Node* node_;
    RetryPolicy policy_;
    Rng rng_;
    Handler handler_;
    FailureHandler failureHandler_;
    std::map<std::uint64_t, Pending> pending_;
    std::unordered_set<std::uint64_t> seenSet_;
    std::deque<std::uint64_t> seenOrder_; ///< bounds the dedup window
    EndpointStats stats_;
    bool down_ = false;
};

} // namespace cop::core::wire
