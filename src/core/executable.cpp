#include "core/executable.hpp"

#include "util/error.hpp"

namespace cop::core {

void ExecutableRegistry::add(const std::string& name,
                             ExecutableHandler handler) {
    COP_REQUIRE(!name.empty(), "executable needs a name");
    COP_REQUIRE(handler != nullptr, "null handler");
    COP_REQUIRE(handlers_.find(name) == handlers_.end(),
                "duplicate executable: " + name);
    handlers_[name] = std::move(handler);
}

bool ExecutableRegistry::has(const std::string& name) const {
    return handlers_.find(name) != handlers_.end();
}

std::vector<std::string> ExecutableRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(handlers_.size());
    for (const auto& [name, handler] : handlers_) out.push_back(name);
    return out;
}

Execution ExecutableRegistry::run(const CommandSpec& cmd, int cores) const {
    auto it = handlers_.find(cmd.executable);
    if (it == handlers_.end())
        throw InvalidArgument("no executable installed for '" +
                              cmd.executable + "'");
    return it->second(cmd, cores);
}

} // namespace cop::core
