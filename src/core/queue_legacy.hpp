#pragma once

/// \file queue_legacy.hpp
/// The original linear-scan command queue, preserved verbatim as a
/// reference implementation. It exists for two consumers only:
///   - the scheduler equivalence tests, which replay randomized
///     push/claim/complete/requeue traces against both implementations
///     and require identical assignment order, and
///   - bench/micro_sched, which measures both flavors in the same binary
///     so the speedup numbers in BENCH_micro_sched.json are honest.
/// Production code must use CommandQueue (core/queue.hpp); nothing in
/// Server links against this class.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/command.hpp"

namespace cop::core {

class LegacyCommandQueue {
public:
    /// Adds a command to the queue via a linear priority-slot scan.
    void push(CommandSpec cmd);

    std::size_t pendingCount() const { return pending_.size(); }
    std::size_t inFlightCount() const { return inFlight_.size(); }
    bool empty() const { return pending_.empty(); }

    /// O(pending x executables) scan.
    bool hasWorkFor(const std::vector<std::string>& executables) const;

    /// First-fit scan over the whole pending deque.
    std::vector<CommandSpec> claim(const std::vector<std::string>& executables,
                                   int maxCores, net::NodeId worker);

    std::optional<CommandSpec> complete(CommandId id);
    std::vector<CommandId> requeueWorker(net::NodeId worker);
    bool requeueCommand(CommandId id);

    /// Deep-copies the checkpoint into the in-flight record (the
    /// pre-SharedBytes data plane).
    void updateCheckpoint(CommandId id, std::vector<std::uint8_t> checkpoint);

    std::optional<net::NodeId> holderOf(CommandId id) const;

private:
    struct InFlight {
        CommandSpec spec;
        net::NodeId worker;
    };
    std::deque<CommandSpec> pending_;
    std::map<CommandId, InFlight> inFlight_;
};

} // namespace cop::core
