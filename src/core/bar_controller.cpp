#include "core/bar_controller.hpp"

#include <algorithm>
#include <sstream>

#include "core/backends.hpp"
#include "util/error.hpp"

namespace cop::core {

BarController::BarController(BarControllerParams params)
    : params_(params), rng_(params.seed) {
    COP_REQUIRE(params_.numWindows >= 1, "need at least one window");
    COP_REQUIRE(params_.samplesPerCommand >= 10, "too few samples");
    COP_REQUIRE(params_.targetError > 0.0, "target error must be positive");
    states_ = fe::harmonicLambdaChain(params_.first, params_.last,
                                      params_.numWindows);
    forwardWork_.assign(params_.numWindows, {});
    reverseWork_.assign(params_.numWindows, {});
}

double BarController::analyticDeltaF() const {
    return fe::harmonicDeltaF(params_.first, params_.last, params_.beta);
}

void BarController::submitWindowCommand(ProjectContext& ctx,
                                        std::size_t window, bool forward) {
    FeSampleInput in;
    in.sampled = forward ? states_[window] : states_[window + 1];
    in.target = forward ? states_[window + 1] : states_[window];
    in.samples = params_.samplesPerCommand;
    in.beta = params_.beta;
    in.seed = rng_.next();

    CommandSpec spec;
    spec.executable = "fe_sample";
    spec.steps = std::int64_t(params_.samplesPerCommand);
    spec.preferredCores = 1;
    // trajectoryId encodes (window, direction) so results route back.
    spec.trajectoryId = int(window) * 2 + (forward ? 0 : 1);
    spec.generation = rounds_;
    spec.input = in.encode();
    ctx.submitCommand(std::move(spec));
}

void BarController::onProjectStart(ProjectContext& ctx) {
    for (std::size_t w = 0; w < params_.numWindows; ++w) {
        submitWindowCommand(ctx, w, true);
        submitWindowCommand(ctx, w, false);
    }
}

void BarController::onCommandFinished(ProjectContext& ctx,
                                      const CommandResult& result) {
    if (done_) return;
    BinaryReader r(result.output);
    const auto work = r.readVector<double>();
    const auto window = std::size_t(result.trajectoryId / 2);
    const bool forward = result.trajectoryId % 2 == 0;
    COP_REQUIRE(window < params_.numWindows, "bad window id");
    auto& bucket = forward ? forwardWork_[window] : reverseWork_[window];
    bucket.insert(bucket.end(), work.begin(), work.end());

    if (ctx.outstandingCommands() == 0) refine(ctx);
}

void BarController::refine(ProjectContext& ctx) {
    ++rounds_;
    estimate_ = fe::barChain(forwardWork_, reverseWork_,
                             fe::BarParams{params_.beta, 1e-10, 200});
    if (estimate_->totalError <= params_.targetError ||
        rounds_ >= params_.maxRounds) {
        done_ = true;
        return;
    }
    // Allocate the next round's commands to windows proportionally to
    // their variance contribution — the same adaptive-resource idea the
    // MSM controller applies to microstates.
    std::vector<double> var(params_.numWindows, 0.0);
    double total = 0.0;
    for (std::size_t w = 0; w < params_.numWindows; ++w) {
        var[w] = estimate_->windows[w].standardError *
                 estimate_->windows[w].standardError;
        total += var[w];
    }
    int submitted = 0;
    if (total > 0.0) {
        for (std::size_t w = 0; w < params_.numWindows && submitted <
             params_.commandsPerRound; ++w) {
            const int n = std::max(
                0, int(params_.commandsPerRound * var[w] / total + 0.5));
            for (int i = 0; i < n && submitted < params_.commandsPerRound;
                 ++i, ++submitted) {
                // Alternate directions so both stay balanced.
                submitWindowCommand(ctx, w, (i % 2) == 0);
            }
        }
    }
    // Guarantee progress even if rounding assigned nothing.
    while (submitted < std::max(2, params_.commandsPerRound / 4)) {
        const std::size_t w =
            std::max_element(var.begin(), var.end()) - var.begin();
        submitWindowCommand(ctx, w, (submitted % 2) == 0);
        ++submitted;
    }
}

bool BarController::isDone(const ProjectContext& ctx) const {
    (void)ctx;
    return done_;
}

std::string BarController::statusReport(const ProjectContext& ctx) const {
    std::ostringstream oss;
    oss << "round " << rounds_ << ", " << ctx.outstandingCommands()
        << " commands outstanding";
    if (estimate_)
        oss << ", deltaF = " << estimate_->totalDeltaF << " +/- "
            << estimate_->totalError << " (exact " << analyticDeltaF()
            << ")";
    return oss.str();
}

} // namespace cop::core
