#include "core/worker.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace cop::core {

Worker::Worker(net::OverlayNetwork& network, std::string name,
               net::KeyPair keys, WorkerConfig config,
               ExecutableRegistry registry)
    : network_(&network), node_(network, std::move(name), keys),
      endpoint_(network, node_, config.rpc, config.batch),
      config_(std::move(config)),
      registry_(std::move(registry)), rng_(node_.keys().publicKey) {
    COP_REQUIRE(config_.cores >= 1, "worker needs at least one core");
    COP_REQUIRE(config_.heartbeatInterval > 0.0, "bad heartbeat interval");
    endpoint_.onEnvelope(
        [this](const wire::Envelope& env, const net::Message&) {
            handleEnvelope(env);
        });
    endpoint_.onDeliveryFailure(
        [this](const net::Message& failed) { handleDeliveryFailure(failed); });
}

void Worker::start(net::NodeId closestServer) {
    COP_REQUIRE(network_->connected(id(), closestServer) ||
                    network_->nextHop(id(), closestServer) !=
                        net::kInvalidNode,
                "worker has no route to its server");
    server_ = closestServer;
    requestWork();
}

void Worker::addFallbackServer(net::NodeId server) {
    if (server == server_) return;
    if (std::find(fallbackServers_.begin(), fallbackServers_.end(), server) ==
        fallbackServers_.end())
        fallbackServers_.push_back(server);
}

void Worker::failAfter(double delay) {
    network_->loop().schedule(delay, [this] {
        alive_ = false;
        running_.clear();
        endpoint_.shutdown();
        COP_LOG_INFO("worker") << node_.name() << ": injected failure";
    });
}

void Worker::requestWork() {
    if (!alive_ || draining_ || requestPending_) return;
    requestPending_ = true;
    requestSentAt_ = network_->loop().now();
    ++stats_.workloadRequestsSent;
    WorkloadRequestPayload req;
    req.worker = id();
    req.platform = config_.platform;
    req.cores = config_.cores;
    req.executables = registry_.names();
    // Reliable: the ack confirms the request reached the server, which
    // then owes us an answer — assignment, NoWorkAvailable (both reliable)
    // or a parked long-poll. Only a delivery failure needs a local retry
    // (handleDeliveryFailure), so an idle, parked worker is quiescent.
    endpoint_.send(server_, req);
}

void Worker::handleEnvelope(const wire::Envelope& env) {
    if (!alive_) return;
    std::visit(
        [&](const auto& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, WorkloadAssignPayload>) {
                if (requestPending_ && assignLatencyObserver_)
                    assignLatencyObserver_(network_->loop().now() -
                                           requestSentAt_);
                requestPending_ = false;
                pollAttempt_ = 0;
                handleAssignment(payload);
            } else if constexpr (std::is_same_v<T, NoWorkPayload>) {
                requestPending_ = false;
                // The queue was empty everywhere; retry after a backoff
                // (this is the "no more than 30 seconds per day" wait of
                // §4, now with jitter so idle fleets desynchronize). A
                // server retry-after hint (park-queue/admission
                // backpressure) is honored as a floor on the delay.
                ++stats_.pollRetries;
                double delay = config_.pollBackoff.delay(pollAttempt_++, rng_);
                if (payload.retryAfterSeconds > delay) {
                    ++stats_.backpressureDeferrals;
                    delay = payload.retryAfterSeconds;
                }
                network_->loop().schedule(delay, [this] { requestWork(); });
            } else {
                COP_LOG_WARN("worker")
                    << node_.name() << ": unexpected message "
                    << net::messageTypeName(env.type);
            }
        },
        env.payload);
}

void Worker::handleDeliveryFailure(const net::Message& failed) {
    if (!alive_) return;
    if (failed.destination != server_) {
        // Targeted at a server we already failed away from (several sends
        // can be in flight when the rotation happens): re-target it at
        // the current server instead of dropping it.
        if (std::find(fallbackServers_.begin(), fallbackServers_.end(),
                      failed.destination) != fallbackServers_.end())
            endpoint_.resend(failed, server_);
        return;
    }
    if (!fallbackServers_.empty()) {
        // The current server is unreachable: rotate to the next fallback
        // and re-target the undelivered message there.
        fallbackServers_.push_back(server_);
        server_ = fallbackServers_.front();
        fallbackServers_.erase(fallbackServers_.begin());
        ++stats_.serverFailovers;
        COP_LOG_INFO("worker") << node_.name() << ": failing over to "
                               << network_->node(server_).name();
        endpoint_.resend(failed, server_);
        return;
    }
    if (failed.type == net::MessageType::WorkloadRequest) {
        // Nowhere to fail over: back off and ask again later (the outage
        // may be a transient cut or partition).
        requestPending_ = false;
        ++stats_.pollRetries;
        const double delay = config_.pollBackoff.delay(pollAttempt_++, rng_);
        network_->loop().schedule(delay, [this] { requestWork(); });
    }
}

void Worker::handleAssignment(const WorkloadAssignPayload& assign) {
    if (assign.commands.empty()) return;

    for (const auto& assigned : assign.commands) {
        if (running_.count(assigned.id) > 0) {
            // Duplicate assignment (a re-sent request was answered twice).
            ++stats_.duplicateAssignmentsDropped;
            continue;
        }
        // Cheap copy: the input payload is a shared buffer, so consuming
        // an assignment never duplicates checkpoint bytes.
        CommandSpec cmd = assigned;
        const int cores = std::min(cmd.preferredCores, config_.cores);
        Execution exec;
        try {
            exec = registry_.run(cmd, cores);
        } catch (const Error& e) {
            exec.result.commandId = cmd.id;
            exec.result.projectId = cmd.projectId;
            exec.result.trajectoryId = cmd.trajectoryId;
            exec.result.generation = cmd.generation;
            exec.result.success = false;
            exec.result.error = e.what();
            exec.simSeconds = 0.0;
        }
        exec.result.simSeconds = exec.simSeconds;
        stats_.busySeconds += exec.simSeconds;

        // Stream mid-run checkpoints to the closest server (unreliable:
        // a lost checkpoint only costs recovery freshness). Each blob is
        // moved into a shared buffer once; the scheduled send and the
        // server-side cache/lease plumbing all alias it.
        for (auto& [fraction, blob] : exec.checkpoints) {
            CheckpointPayload cp;
            cp.commandId = cmd.id;
            cp.projectId = cmd.projectId;
            cp.projectServer = cmd.projectServer;
            cp.blob = std::move(blob);
            network_->loop().schedule(
                fraction * exec.simSeconds,
                [this, cp = std::move(cp)]() mutable {
                    if (!alive_) return;
                    ++stats_.checkpointsSent;
                    endpoint_.send(server_, cp, /*reliable=*/false);
                });
        }

        // Deliver the result when the (virtual) run completes.
        const CommandId cid = cmd.id;
        const auto projectServer = cmd.projectServer;
        const double duration = exec.simSeconds;
        const bool ok = exec.result.success;
        running_[cid] = Running{std::move(cmd)};
        network_->loop().schedule(
            duration,
            [this, cid, projectServer, ok,
             result = std::move(exec.result)]() mutable {
                if (!alive_) return;
                running_.erase(cid);
                if (ok)
                    ++stats_.commandsCompleted;
                else
                    ++stats_.commandsFailed;
                // Ask for the next workload before reporting this result:
                // the request must reach the server while the project is
                // still unfinished so it can be parked (long-polled)
                // rather than bounced NoWorkAvailable by a race with our
                // own final output. Unbatched, the small request overtook
                // the larger output on the wire anyway; coalescing both
                // into one frame preserves that order only if we queue
                // the request first.
                if (running_.empty()) requestWork();
                CommandOutputPayload out;
                out.result = std::move(result);
                out.projectServer = projectServer;
                endpoint_.send(server_, out);
            });
    }
    // Report status right away so the closest server knows which commands
    // we hold (needed for failure handoff), then keep beating.
    sendHeartbeat();
    ensureHeartbeatScheduled();
}

void Worker::ensureHeartbeatScheduled() {
    if (heartbeatScheduled_ || running_.empty()) return;
    heartbeatScheduled_ = true;
    network_->loop().schedule(config_.heartbeatInterval, [this] {
        heartbeatScheduled_ = false;
        if (!alive_) return;
        if (!running_.empty()) {
            sendHeartbeat();
            ensureHeartbeatScheduled();
        }
    });
}

void Worker::sendHeartbeat() {
    ++stats_.heartbeatsSent;
    HeartbeatPayload hb;
    hb.worker = id();
    for (const auto& [cid, run] : running_) {
        hb.running.push_back(cid);
        hb.projectServers.push_back(run.spec.projectServer);
    }
    endpoint_.send(server_, hb, /*reliable=*/false);
}

} // namespace cop::core
