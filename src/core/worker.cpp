#include "core/worker.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace cop::core {

Worker::Worker(net::OverlayNetwork& network, std::string name,
               net::KeyPair keys, WorkerConfig config,
               ExecutableRegistry registry)
    : network_(&network), node_(network, std::move(name), keys),
      config_(std::move(config)), registry_(std::move(registry)) {
    COP_REQUIRE(config_.cores >= 1, "worker needs at least one core");
    COP_REQUIRE(config_.heartbeatInterval > 0.0, "bad heartbeat interval");
    node_.setHandler([this](const net::Message& msg) { handleMessage(msg); });
}

void Worker::start(net::NodeId closestServer) {
    COP_REQUIRE(network_->connected(id(), closestServer) ||
                    network_->nextHop(id(), closestServer) !=
                        net::kInvalidNode,
                "worker has no route to its server");
    server_ = closestServer;
    requestWork();
}

void Worker::failAfter(double delay) {
    network_->loop().schedule(delay, [this] {
        alive_ = false;
        running_.clear();
        COP_LOG_INFO("worker") << node_.name() << ": injected failure";
    });
}

void Worker::sendMessage(net::MessageType type,
                         std::vector<std::uint8_t> payload,
                         std::uint64_t payloadKey) {
    net::Message msg;
    msg.type = type;
    msg.source = id();
    msg.destination = server_;
    msg.payload = std::move(payload);
    msg.payloadKey = payloadKey;
    network_->send(std::move(msg));
}

void Worker::requestWork() {
    if (!alive_ || draining_ || requestPending_) return;
    requestPending_ = true;
    ++stats_.workloadRequestsSent;
    WorkloadRequestPayload req;
    req.worker = id();
    req.platform = config_.platform;
    req.cores = config_.cores;
    req.executables = registry_.names();
    sendMessage(net::MessageType::WorkloadRequest, req.encode());
}

void Worker::handleMessage(const net::Message& msg) {
    if (!alive_) return;
    switch (msg.type) {
    case net::MessageType::WorkloadAssign:
        requestPending_ = false;
        handleAssignment(msg);
        break;
    case net::MessageType::NoWorkAvailable:
        requestPending_ = false;
        // The queue was empty everywhere; retry after a delay (this is the
        // "no more than 30 seconds per day" wait of §4).
        network_->loop().schedule(config_.retryDelay,
                                  [this] { requestWork(); });
        break;
    default:
        COP_LOG_WARN("worker") << node_.name() << ": unexpected message "
                               << net::messageTypeName(msg.type);
    }
}

void Worker::handleAssignment(const net::Message& msg) {
    auto assign = WorkloadAssignPayload::decode(msg.payload);
    if (assign.commands.empty()) return;

    for (auto& cmd : assign.commands) {
        const int cores = std::min(cmd.preferredCores, config_.cores);
        Execution exec;
        try {
            exec = registry_.run(cmd, cores);
        } catch (const Error& e) {
            exec.result.commandId = cmd.id;
            exec.result.projectId = cmd.projectId;
            exec.result.trajectoryId = cmd.trajectoryId;
            exec.result.generation = cmd.generation;
            exec.result.success = false;
            exec.result.error = e.what();
            exec.simSeconds = 0.0;
        }
        exec.result.simSeconds = exec.simSeconds;
        stats_.busySeconds += exec.simSeconds;

        // Stream mid-run checkpoints to the closest server.
        for (auto& [fraction, blob] : exec.checkpoints) {
            CheckpointPayload cp;
            cp.commandId = cmd.id;
            cp.projectId = cmd.projectId;
            cp.projectServer = cmd.projectServer;
            cp.blob = std::move(blob);
            network_->loop().schedule(
                fraction * exec.simSeconds,
                [this, cp = std::move(cp)]() mutable {
                    if (!alive_) return;
                    ++stats_.checkpointsSent;
                    sendMessage(net::MessageType::CheckpointData,
                                cp.encode());
                });
        }

        // Deliver the result when the (virtual) run completes.
        const CommandId cid = cmd.id;
        const auto projectServer = std::uint64_t(cmd.projectServer);
        const double duration = exec.simSeconds;
        const bool ok = exec.result.success;
        running_[cid] = Running{std::move(cmd)};
        network_->loop().schedule(
            duration,
            [this, cid, projectServer, ok,
             result = std::move(exec.result)]() mutable {
                if (!alive_) return;
                running_.erase(cid);
                if (ok)
                    ++stats_.commandsCompleted;
                else
                    ++stats_.commandsFailed;
                BinaryWriter w;
                result.serialize(w);
                sendMessage(ok ? net::MessageType::CommandOutput
                               : net::MessageType::CommandFailed,
                            w.takeBuffer(), projectServer);
                if (running_.empty()) requestWork();
            });
    }
    // Report status right away so the closest server knows which commands
    // we hold (needed for failure handoff), then keep beating.
    sendHeartbeat();
    ensureHeartbeatScheduled();
}

void Worker::ensureHeartbeatScheduled() {
    if (heartbeatScheduled_ || running_.empty()) return;
    heartbeatScheduled_ = true;
    network_->loop().schedule(config_.heartbeatInterval, [this] {
        heartbeatScheduled_ = false;
        if (!alive_) return;
        if (!running_.empty()) {
            sendHeartbeat();
            ensureHeartbeatScheduled();
        }
    });
}

void Worker::sendHeartbeat() {
    ++stats_.heartbeatsSent;
    HeartbeatPayload hb;
    hb.worker = id();
    for (const auto& [cid, run] : running_) {
        hb.running.push_back(cid);
        hb.projectServers.push_back(run.spec.projectServer);
    }
    sendMessage(net::MessageType::Heartbeat, hb.encode());
}

} // namespace cop::core
