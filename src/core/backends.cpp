#include "core/backends.hpp"

#include "util/error.hpp"

namespace cop::core {

DurationModel linearDurationModel(double stepSecondsOneCore) {
    COP_REQUIRE(stepSecondsOneCore > 0.0, "step time must be positive");
    return [stepSecondsOneCore](std::int64_t steps, int cores) {
        return double(steps) * stepSecondsOneCore / double(cores);
    };
}

std::vector<std::uint8_t> MdrunOutput::encode() const {
    BinaryWriter w;
    w.writeHeader("MOUT", 1);
    segment.serialize(w);
    w.writeBytes(checkpoint);
    return w.takeBuffer();
}

MdrunOutput MdrunOutput::decode(std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    const auto version = r.readHeader("MOUT");
    COP_REQUIRE(version == 1, "unsupported mdrun output version");
    MdrunOutput out;
    out.segment = md::Trajectory::deserialize(r);
    out.checkpoint = r.readBytes();
    return out;
}

ExecutableHandler makeMdrunExecutable(DurationModel duration) {
    COP_REQUIRE(duration != nullptr, "mdrun needs a duration model");
    return [duration](const CommandSpec& cmd, int cores) {
        COP_REQUIRE(cmd.steps > 0, "mdrun command needs steps > 0");
        md::Simulation sim = md::Simulation::restore(cmd.input);

        // Commands always start on a segment boundary; a nonzero phase
        // means this is a requeued command resuming from a mid-segment
        // checkpoint (paper §2.3) — run only the remaining steps.
        const std::int64_t phase = sim.state().step % cmd.steps;
        const std::int64_t remaining = cmd.steps - phase;

        Execution exec;
        exec.simSeconds = duration(remaining, cores);

        // Run in quarters, checkpointing between them so the worker can
        // stream restart points to its server (paper §2.3).
        const std::int64_t quarter = remaining / 4;
        std::int64_t done = 0;
        for (int part = 0; part < 3 && quarter > 0; ++part) {
            sim.run(quarter);
            done += quarter;
            exec.checkpoints.emplace_back(0.25 * (part + 1),
                                          sim.checkpoint());
        }
        sim.run(remaining - done);

        MdrunOutput out;
        out.segment = sim.takeTrajectory();
        out.checkpoint = sim.checkpoint();

        exec.result.commandId = cmd.id;
        exec.result.projectId = cmd.projectId;
        exec.result.trajectoryId = cmd.trajectoryId;
        exec.result.generation = cmd.generation;
        exec.result.success = true;
        exec.result.output = out.encode();
        return exec;
    };
}

std::vector<std::uint8_t> FeSampleInput::encode() const {
    BinaryWriter w;
    w.writeHeader("FEIN", 1);
    w.write(sampled.k);
    w.write(sampled.x0);
    w.write(target.k);
    w.write(target.x0);
    w.write(samples);
    w.write(beta);
    w.write(seed);
    return w.takeBuffer();
}

FeSampleInput FeSampleInput::decode(std::span<const std::uint8_t> data) {
    BinaryReader r(data);
    const auto version = r.readHeader("FEIN");
    COP_REQUIRE(version == 1, "unsupported fe input version");
    FeSampleInput in;
    in.sampled.k = r.read<double>();
    in.sampled.x0 = r.read<double>();
    in.target.k = r.read<double>();
    in.target.x0 = r.read<double>();
    in.samples = r.read<std::uint64_t>();
    in.beta = r.read<double>();
    in.seed = r.read<std::uint64_t>();
    return in;
}

ExecutableHandler makeFeSampleExecutable(DurationModel duration) {
    COP_REQUIRE(duration != nullptr, "fe_sample needs a duration model");
    return [duration](const CommandSpec& cmd, int cores) {
        const auto in = FeSampleInput::decode(cmd.input);
        Rng rng(in.seed);
        const auto work = fe::harmonicWorkSamples(in.sampled, in.target,
                                                  in.samples, in.beta, rng);
        Execution exec;
        exec.simSeconds = duration(std::int64_t(in.samples), cores);
        exec.result.commandId = cmd.id;
        exec.result.projectId = cmd.projectId;
        exec.result.trajectoryId = cmd.trajectoryId;
        exec.result.generation = cmd.generation;
        exec.result.success = true;
        BinaryWriter w;
        w.write(work);
        exec.result.output = w.takeBuffer();
        return exec;
    };
}

ExecutableHandler makeSimulatedExecutable(DurationModel duration,
                                          std::size_t outputBytes) {
    COP_REQUIRE(duration != nullptr, "simulated executable needs a model");
    return [duration, outputBytes](const CommandSpec& cmd, int cores) {
        Execution exec;
        exec.simSeconds = duration(cmd.steps, cores);
        exec.result.commandId = cmd.id;
        exec.result.projectId = cmd.projectId;
        exec.result.trajectoryId = cmd.trajectoryId;
        exec.result.generation = cmd.generation;
        exec.result.success = true;
        exec.result.output.assign(outputBytes, 0);
        return exec;
    };
}

} // namespace cop::core
