#pragma once

/// \file copernicus.hpp
/// Top-level convenience API: builds a deployment (event loop + overlay +
/// servers + workers + clients) like the one in the paper's Fig. 1, wires
/// up trust and links, and drives projects to completion. Examples and
/// benches use this instead of assembling the pieces by hand.

#include <memory>
#include <string>
#include <vector>

#include "core/server.hpp"
#include "core/worker.hpp"
#include "net/overlay.hpp"
#include "util/random.hpp"

namespace cop::core {

/// Monitoring/control client (paper: command-line client or browser).
class Client {
public:
    Client(net::OverlayNetwork& network, std::string name,
           net::KeyPair keys);

    net::Node& node() { return node_; }
    net::NodeId id() const { return node_.id(); }

    /// Asks `server` for the status of `project`; the reply lands in
    /// lastStatus() once the event loop delivers it.
    void requestStatus(net::NodeId server, ProjectId project);

    /// Sends a control command to `project`'s controller (e.g. the MSM
    /// controller accepts "set clusters N" and "set seeds N", realizing
    /// the paper's dynamically adjustable sampling parameters).
    void sendCommand(net::NodeId server, ProjectId project,
                     const std::string& command);

    const std::string& lastStatus() const { return lastStatus_; }
    std::size_t responsesReceived() const { return responses_; }
    /// False when the last response was load-shed by admission control;
    /// lastRetryAfter() then carries the server's suggested backoff.
    bool lastAccepted() const { return lastAccepted_; }
    double lastRetryAfter() const { return lastRetryAfter_; }
    /// Responses rejected by admission control so far.
    std::size_t responsesShed() const { return shed_; }
    /// The client's typed endpoint (benches attach latency observers).
    wire::Endpoint& endpoint() { return endpoint_; }

private:
    net::OverlayNetwork* network_;
    net::Node node_;
    wire::Endpoint endpoint_;
    std::string lastStatus_;
    std::size_t responses_ = 0;
    std::size_t shed_ = 0;
    bool lastAccepted_ = true;
    double lastRetryAfter_ = 0.0;
};

/// Canonical link presets (order-of-magnitude values from the paper's
/// Fig. 6 bandwidth/latency tiers).
namespace links {
/// Compute-node to head-node link inside a cluster (Infiniband-class).
net::LinkProperties intraCluster();
/// Server-to-server link inside one data centre.
net::LinkProperties dataCenter();
/// Wide-area link between continents (paper: Stockholm <-> Palo Alto).
net::LinkProperties wideArea();
} // namespace links

/// Owns every piece of a simulated Copernicus deployment.
class Deployment {
public:
    explicit Deployment(std::uint64_t seed = 42);

    net::EventLoop& loop() { return loop_; }
    net::OverlayNetwork& network() { return network_; }

    Server& addServer(const std::string& name, ServerConfig config = {});

    /// Establishes mutual trust, a link, and bidirectional peering between
    /// two servers.
    void connectServers(Server& a, Server& b, net::LinkProperties props);

    /// Creates a worker attached to `closest` (trust + link + start).
    Worker& addWorker(const std::string& name, Server& closest,
                      WorkerConfig config, ExecutableRegistry registry,
                      net::LinkProperties props);

    /// Gives `worker` a direct link to `fallback` and registers it as a
    /// failover target for when the worker's current server becomes
    /// unreachable.
    void addFallbackServer(Worker& worker, Server& fallback,
                           net::LinkProperties props);

    /// Installs a fault plan on the underlying overlay network.
    void setFaultPlan(const net::FaultPlan& plan) {
        network_.setFaultPlan(plan);
    }

    Client& addClient(const std::string& name, Server& server,
                      net::LinkProperties props);

    /// Runs the event loop until every project on every server is done,
    /// the virtual-time horizon passes, or the queue drains. Returns true
    /// if all projects completed.
    bool runUntilDone(double horizonSeconds);

    const std::vector<std::unique_ptr<Server>>& servers() const {
        return servers_;
    }
    const std::vector<std::unique_ptr<Worker>>& workers() const {
        return workers_;
    }

private:
    net::KeyPair newKeys() { return net::KeyPair::generate(keySeed_.next()); }

    net::EventLoop loop_;
    net::OverlayNetwork network_;
    Rng keySeed_;
    std::vector<std::unique_ptr<Server>> servers_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::unique_ptr<Client>> clients_;
};

} // namespace cop::core
