#pragma once

/// \file queue.hpp
/// Per-server command queue with claim/complete/requeue semantics and
/// failure-recovery bookkeeping (which worker holds which command, and the
/// freshest checkpoint the server has seen for each in-flight command).
///
/// Indexed implementation (see DESIGN.md "Scheduler data structures"):
/// pending work lives in per-executable buckets ordered by
/// (priority desc, seq asc), so FIFO-within-priority falls out of a
/// monotone sequence counter and requeue-to-head-of-priority-level out of
/// a second, decreasing counter. hasWorkFor() probes only the offered
/// buckets; claim() k-way-merges the offered buckets in global priority
/// order (never touching commands for executables the worker lacks); a
/// (priority desc, cores desc, seq asc) secondary index supports a
/// largest-fit-first claim policy that bin-packs the worker's core offer.
/// Assignment order under ClaimPolicy::FirstFit is observably identical
/// to the original linear-scan queue (kept as LegacyCommandQueue for
/// equivalence tests and benchmarks).

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/blob_vault.hpp"
#include "core/command.hpp"
#include "util/serialize.hpp"

namespace cop::core {

/// How claim() assembles a workload from matching pending commands.
enum class ClaimPolicy {
    /// Walk matching work in global (priority, FIFO) order, claiming every
    /// command that fits the remaining core budget. Matches the original
    /// scan byte-for-byte.
    FirstFit,
    /// Highest priority still wins, but within a priority level the
    /// largest core request that fits the remaining budget is claimed
    /// first ("assemble workloads maximally utilizing the offer").
    LargestFit,
};

/// Scheduler hot-path counters, exposed via Server::schedulerStats().
struct SchedulerStats {
    std::uint64_t pushes = 0;
    std::uint64_t duplicatePushesRejected = 0;
    std::uint64_t claims = 0;           ///< claim() calls
    std::uint64_t commandsClaimed = 0;
    std::uint64_t commandsRequeued = 0;
    std::uint64_t claimScanSteps = 0;   ///< bucket entries visited by claim()
    std::uint64_t hasWorkProbes = 0;    ///< buckets probed by hasWorkFor()
    std::uint64_t checkpointUpdates = 0;
    /// Payload bytes adopted by reference instead of duplicated.
    std::uint64_t checkpointBytesShared = 0;
    /// Payload buffers the queue had to deep-copy. Stays 0 on the
    /// heartbeat -> checkpoint -> lease-renew path; asserted in tests.
    std::uint64_t checkpointDeepCopies = 0;
    /// Checkpoints dropped because the command is not in flight.
    std::uint64_t checkpointsUnknownId = 0;
};

class CommandQueue {
public:
    /// Adds a command to the queue (FIFO within its priority level).
    /// Rejects ids already pending or in flight.
    void push(CommandSpec cmd);

    std::size_t pendingCount() const { return pendingCount_; }
    /// Sum of input-payload bytes over pending commands (admission quotas).
    std::size_t pendingBytes() const { return pendingBytes_; }
    std::size_t inFlightCount() const { return inFlight_.size(); }
    bool empty() const { return pendingCount_ == 0; }

    /// True if some pending command runs `executable`. O(#executables
    /// offered) bucket probes — independent of the number of pending
    /// commands.
    bool hasWorkFor(const std::vector<std::string>& executables) const;

    /// Claims up to `maxCores` worth of commands matching the worker's
    /// executables, marking them in-flight for `worker`. Commands whose
    /// preferredCores exceed the remaining budget are skipped (the paper's
    /// "maximally utilizes the available resources"); `policy` selects
    /// between first-come order and largest-fit-first bin packing.
    std::vector<CommandSpec> claim(const std::vector<std::string>& executables,
                                   int maxCores, net::NodeId worker,
                                   ClaimPolicy policy = ClaimPolicy::FirstFit);

    /// Marks a command finished; returns its spec if it was in flight.
    std::optional<CommandSpec> complete(CommandId id);

    /// Requeues every in-flight command held by `worker` (worker failure,
    /// paper §2.3), substituting the newest checkpoint seen for each, and
    /// returns their ids. Requeued commands land at the head of their
    /// priority level so recovery work is not starved by newer
    /// submissions.
    std::vector<CommandId> requeueWorker(net::NodeId worker);

    /// Requeues a single in-flight command (lease expiry, lost
    /// assignment); no-op returning false if it is not in flight.
    bool requeueCommand(CommandId id);

    /// Records a fresher input payload (checkpoint) for an in-flight
    /// command so a requeue resumes from it rather than from scratch.
    /// The buffer is adopted by reference — zero bytes copied.
    void updateCheckpoint(CommandId id, SharedBytes checkpoint);
    /// Legacy-compatible overload: wraps the lvalue vector by deep copy
    /// and counts it in SchedulerStats::checkpointDeepCopies. Hot paths
    /// must use the SharedBytes overload.
    void updateCheckpoint(CommandId id,
                          const std::vector<std::uint8_t>& checkpoint);

    /// Worker currently holding a command, if any.
    std::optional<net::NodeId> holderOf(CommandId id) const;

    /// Attaches a payload vault: from now on pending and in-flight input
    /// payloads are stashed in the vault (tiered store) instead of held
    /// inline, and fetched back only when a claim ships the command.
    /// Must be set before the first push.
    void setVault(BlobVault* vault);

    /// Enumeration for snapshotting and recovery bookkeeping. Pending
    /// specs are visited in arbitrary (bucket) order with their stashed
    /// inputs still parked (spec.input may be empty).
    void forEachPending(
        const std::function<void(const CommandSpec&)>& fn) const;
    void forEachInFlight(
        const std::function<void(const CommandSpec&, net::NodeId)>& fn)
        const;

    /// Full-state serialization for WAL snapshots: sequence counters,
    /// pending entries (with payloads pulled from the vault) and the
    /// in-flight table. restore() expects an empty queue and treats the
    /// stream as untrusted (hostile counts/lengths throw IoError).
    void serialize(BinaryWriter& w) const;
    void restore(BinaryReader& r);

    const SchedulerStats& stats() const { return stats_; }

private:
    /// Primary ordering: priority descending, then FIFO by sequence.
    struct Key {
        int priority = 0;
        std::int64_t seq = 0;
        bool operator<(const Key& o) const {
            if (priority != o.priority) return priority > o.priority;
            return seq < o.seq;
        }
    };
    /// Secondary ordering for LargestFit: priority desc, cores desc,
    /// FIFO tie-break.
    struct CoreKey {
        int priority = 0;
        int cores = 0;
        std::int64_t seq = 0;
        bool operator<(const CoreKey& o) const {
            if (priority != o.priority) return priority > o.priority;
            if (cores != o.cores) return cores > o.cores;
            return seq < o.seq;
        }
    };
    struct Bucket {
        std::map<Key, CommandSpec> byKey;
        std::set<CoreKey> byCores;
    };
    struct InFlight {
        CommandSpec spec;
        net::NodeId worker;
    };

    /// Single insertion point shared by push and both requeue paths (the
    /// three hand-rolled priority-scan loops of the legacy queue).
    void insertPending(CommandSpec cmd, std::int64_t seq);
    /// Parks cmd.input in the vault (when attached), leaving it empty.
    void stashInput(CommandSpec& cmd);
    /// Input bytes a spec accounts for, stashed or inline.
    std::size_t logicalSize(const CommandSpec& spec) const;
    /// Rehydrates a spec's input from the vault without releasing it.
    CommandSpec rehydrate(CommandSpec spec) const;
    /// Moves one bucket entry into the in-flight table; returns the spec.
    CommandSpec take(Bucket& bucket, std::map<Key, CommandSpec>::iterator it,
                     net::NodeId worker);
    void requeueInFlight(InFlight&& flight);

    std::map<std::string, Bucket> buckets_; ///< executable -> pending work
    std::map<CommandId, InFlight> inFlight_;
    std::unordered_set<CommandId> knownIds_; ///< pending + in flight
    std::size_t pendingCount_ = 0;
    std::size_t pendingBytes_ = 0; ///< input bytes across pending commands
    std::int64_t nextSeq_ = 0;  ///< push order (increasing)
    std::int64_t headSeq_ = -1; ///< requeue-to-head order (decreasing)
    BlobVault* vault_ = nullptr; ///< optional tiered payload store
    mutable SchedulerStats stats_; ///< mutable: const probes count too
};

} // namespace cop::core
