#pragma once

/// \file queue.hpp
/// Per-server command queue with claim/complete/requeue semantics and
/// failure-recovery bookkeeping (which worker holds which command, and the
/// freshest checkpoint the server has seen for each in-flight command).

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/command.hpp"

namespace cop::core {

class CommandQueue {
public:
    /// Adds a command to the back of the queue.
    void push(CommandSpec cmd);

    std::size_t pendingCount() const { return pending_.size(); }
    std::size_t inFlightCount() const { return inFlight_.size(); }
    bool empty() const { return pending_.empty(); }

    /// True if some pending command runs `executable`.
    bool hasWorkFor(const std::vector<std::string>& executables) const;

    /// Claims up to `maxCores` worth of commands matching the worker's
    /// executables, marking them in-flight for `worker`. Commands whose
    /// preferredCores exceed the remaining budget are skipped (best-fit
    /// first-come order, as in the paper's "maximally utilizes the
    /// available resources").
    std::vector<CommandSpec> claim(const std::vector<std::string>& executables,
                                   int maxCores, net::NodeId worker);

    /// Marks a command finished; returns its spec if it was in flight.
    std::optional<CommandSpec> complete(CommandId id);

    /// Requeues every in-flight command held by `worker` (worker failure,
    /// paper §2.3), substituting the newest checkpoint seen for each, and
    /// returns their ids.
    std::vector<CommandId> requeueWorker(net::NodeId worker);

    /// Requeues a single in-flight command (lease expiry, lost
    /// assignment); no-op returning false if it is not in flight.
    bool requeueCommand(CommandId id);

    /// Records a fresher input payload (checkpoint) for an in-flight
    /// command so a requeue resumes from it rather than from scratch.
    void updateCheckpoint(CommandId id, std::vector<std::uint8_t> checkpoint);

    /// Worker currently holding a command, if any.
    std::optional<net::NodeId> holderOf(CommandId id) const;

private:
    struct InFlight {
        CommandSpec spec;
        net::NodeId worker;
    };
    std::deque<CommandSpec> pending_;
    std::map<CommandId, InFlight> inFlight_;
};

} // namespace cop::core
