#include "core/command.hpp"

namespace cop::core {

void CommandSpec::serialize(BinaryWriter& w) const {
    w.writeHeader("CCMD", 1);
    w.write(id);
    w.write(projectId);
    w.write(std::int32_t(projectServer));
    w.write(executable);
    w.write(steps);
    w.write(std::int32_t(preferredCores));
    w.write(std::int32_t(priority));
    w.write(std::int32_t(trajectoryId));
    w.write(std::int32_t(generation));
    w.writeBytes(input);
}

std::size_t CommandSpec::encodedSize() const {
    return 4 + 4            // header magic + version
           + 8 + 8 + 4      // id, projectId, projectServer
           + 8 + executable.size() // length-prefixed string
           + 8 + 4 + 4 + 4 + 4 // steps, cores, priority, trajectory, gen
           + 8 + input.size();  // length-prefixed blob
}

CommandSpec CommandSpec::deserialize(BinaryReader& r) {
    const auto version = r.readHeader("CCMD");
    COP_REQUIRE(version == 1, "unsupported command version");
    CommandSpec c;
    c.id = r.read<std::uint64_t>();
    c.projectId = r.read<std::uint64_t>();
    c.projectServer = r.read<std::int32_t>();
    c.executable = r.readString();
    c.steps = r.read<std::int64_t>();
    c.preferredCores = r.read<std::int32_t>();
    c.priority = r.read<std::int32_t>();
    c.trajectoryId = r.read<std::int32_t>();
    c.generation = r.read<std::int32_t>();
    c.input = r.readBytes();
    return c;
}

void CommandResult::serialize(BinaryWriter& w) const {
    w.writeHeader("CRES", 1);
    w.write(commandId);
    w.write(projectId);
    w.write(std::int32_t(trajectoryId));
    w.write(std::int32_t(generation));
    w.write(std::uint8_t(success));
    w.write(error);
    w.writeBytes(output);
    w.write(simSeconds);
}

std::size_t CommandResult::encodedSize() const {
    return 4 + 4            // header magic + version
           + 8 + 8 + 4 + 4  // commandId, projectId, trajectoryId, generation
           + 1              // success
           + 8 + error.size()
           + 8 + output.size()
           + 8;             // simSeconds
}

CommandResult CommandResult::deserialize(BinaryReader& r) {
    const auto version = r.readHeader("CRES");
    COP_REQUIRE(version == 1, "unsupported result version");
    CommandResult c;
    c.commandId = r.read<std::uint64_t>();
    c.projectId = r.read<std::uint64_t>();
    c.trajectoryId = r.read<std::int32_t>();
    c.generation = r.read<std::int32_t>();
    c.success = r.read<std::uint8_t>() != 0;
    c.error = r.readString();
    c.output = r.readBytes();
    c.simSeconds = r.read<double>();
    return c;
}

} // namespace cop::core
