#pragma once

/// \file server.hpp
/// A Copernicus server (paper §2): all servers run identical code; their
/// role (project server vs. network relay) is determined solely by their
/// connectivity and whether they hold projects. A server:
///   - maintains a command queue for the projects it hosts,
///   - matches workload requests against that queue, forwarding requests
///     it cannot satisfy to peer servers ("first server with available
///     commands"),
///   - monitors worker heartbeats and signals failures to project servers,
///   - caches worker checkpoints so commands can transparently continue on
///     another worker after a failure,
///   - holds a lease on every assigned command, renewed by heartbeats
///     (directly, or via LeaseRenew relayed by the worker's closest
///     server); an expired lease requeues the command from its newest
///     checkpoint — the backstop when failure signals themselves are lost,
///   - dispatches controller plugin events as command output arrives.
///
/// All messaging goes through a typed wire::Endpoint: payload structs in
/// and out, acks/retransmits/duplicate suppression below the protocol.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/envelope.hpp"
#include "core/queue.hpp"
#include "core/wire.hpp"
#include "net/overlay.hpp"

namespace cop::core {

struct ServerConfig {
    /// Expected worker heartbeat interval (paper default: 120 s).
    double heartbeatInterval = 120.0;
    /// A worker is declared dead after this many missed intervals.
    double failureMultiplier = 2.0;
    /// A command's lease lasts this many heartbeat intervals. Larger than
    /// failureMultiplier so the cheap path (closest-server failure
    /// detection + WorkerFailed handoff) fires first; lease expiry only
    /// catches what that path misses (lost signals, partitions).
    double leaseMultiplier = 3.0;
    /// Cache worker checkpoints for failure handoff.
    bool cacheCheckpoints = true;
    /// Park unsatisfiable workload requests and answer them as soon as new
    /// commands are queued (long polling), instead of bouncing
    /// NoWorkAvailable and having the worker poll. Requests are parked only
    /// on servers hosting unfinished projects; elsewhere the worker falls
    /// back to polling.
    bool parkRequests = true;
    /// How the scheduler assembles workloads from matching commands:
    /// FirstFit preserves strict arrival order within a priority level;
    /// LargestFit bin-packs the worker's core offer (largest request
    /// first) for higher utilization on heterogeneous commands.
    ClaimPolicy claimPolicy = ClaimPolicy::FirstFit;
    /// Ack/retransmit policy for reliable sends.
    wire::RetryPolicy rpc;
    /// Transmit coalescing + ack piggybacking (enabled by default).
    wire::BatchPolicy batch;
};

struct ServerStats {
    std::uint64_t workloadRequests = 0;
    std::uint64_t requestsForwarded = 0;
    std::uint64_t commandsAssigned = 0;
    std::uint64_t commandsCompleted = 0;
    std::uint64_t commandsFailed = 0;
    std::uint64_t workersFailed = 0;
    std::uint64_t commandsRequeued = 0;
    std::uint64_t heartbeatsReceived = 0;
    std::uint64_t duplicateResultsDropped = 0; ///< re-executions ignored
    std::uint64_t leasesExpired = 0;
};

class Server {
public:
    Server(net::OverlayNetwork& network, std::string name,
           net::KeyPair keys, ServerConfig config = {});
    ~Server(); // out-of-line: ProjectEntry holds an incomplete ContextImpl

    net::Node& node() { return node_; }
    net::NodeId id() const { return node_.id(); }
    const std::string& name() const { return node_.name(); }

    /// Declares another server a peer for workload-request forwarding.
    /// (Connectivity itself is established via OverlayNetwork::connect.)
    void addPeer(net::NodeId peer);

    /// Creates a project hosted on this server. The controller's
    /// onProjectStart fires immediately.
    ProjectId createProject(std::string name,
                            std::unique_ptr<Controller> controller);

    bool projectDone(ProjectId id) const;
    /// True when every hosted project is done.
    bool allProjectsDone() const;
    std::string projectStatus(ProjectId id) const;
    Controller& projectController(ProjectId id);

    const CommandQueue& queue() const { return queue_; }
    const ServerStats& stats() const { return stats_; }
    /// Scheduler hot-path counters (pushes, claims, scan lengths,
    /// checkpoint bytes shared instead of copied).
    const SchedulerStats& schedulerStats() const { return queue_.stats(); }
    /// Wire-layer counters (retransmits, acks, duplicates dropped,
    /// batching/flush breakdown).
    const wire::EndpointStats& wireStats() const { return endpoint_.stats(); }
    /// The server's typed endpoint (benches/tests attach observers here).
    wire::Endpoint& endpoint() { return endpoint_; }
    const ServerConfig& config() const { return config_; }

private:
    class ContextImpl;

    struct ProjectEntry {
        std::string name;
        std::unique_ptr<Controller> controller;
        std::unique_ptr<ContextImpl> context;
        std::set<CommandId> outstanding;
    };

    struct WorkerRecord {
        double lastHeartbeat = 0.0;
        HeartbeatPayload lastPayload;
    };

    struct Lease {
        net::NodeId worker = net::kInvalidNode;
        double expires = 0.0;
    };

    void handleEnvelope(const wire::Envelope& env, const net::Message& msg);
    void handleWorkloadRequest(const WorkloadRequestPayload& request,
                               const net::Message& msg);
    void handleCommandOutput(const CommandOutputPayload& payload);
    void handleHeartbeat(const HeartbeatPayload& hb);
    void handleCheckpoint(const CheckpointPayload& cp);
    void handleWorkerFailed(const WorkerFailedPayload& payload);
    void handleLeaseRenew(const LeaseRenewPayload& payload);
    void handleClientRequest(const ClientRequestPayload& request,
                             const net::Message& msg);
    void handleDeliveryFailure(const net::Message& failed);

    /// Routes a decoded result to the local project controller. First
    /// delivery wins; duplicate results of requeued-then-recovered
    /// commands are dropped.
    void dispatchResult(CommandResult result);

    /// Claims matching commands, dropping stale re-executions of commands
    /// that already completed, and grants leases for the assignment.
    std::vector<CommandSpec> claimFor(const WorkloadRequestPayload& request);
    void parkRequest(WorkloadRequestPayload request);

    void grantLease(CommandId id, net::NodeId worker);
    void renewLease(CommandId id, net::NodeId worker);
    void releaseLease(CommandId id) { leases_.erase(id); }
    void ensureLeaseSweepScheduled();
    void sweepLeases();
    double leaseDuration() const {
        return config_.leaseMultiplier * config_.heartbeatInterval;
    }

    void ensureSweepScheduled();
    void sweepWorkers();
    bool hostsUnfinishedProject() const;
    /// Called after commands are queued: answers parked requests.
    void scheduleServiceWaiting();
    void serviceWaitingRequests();

    CommandId nextCommandId();

    net::OverlayNetwork* network_;
    net::Node node_;
    wire::Endpoint endpoint_;
    ServerConfig config_;
    CommandQueue queue_;
    std::vector<net::NodeId> peers_;
    std::map<ProjectId, ProjectEntry> projects_;
    std::map<net::NodeId, WorkerRecord> workers_;
    /// commandId -> newest checkpoint blob seen from a local worker.
    std::map<CommandId, CheckpointPayload> checkpointCache_;
    std::map<CommandId, Lease> leases_;
    std::set<CommandId> completedCommands_;
    ServerStats stats_;
    std::vector<WorkloadRequestPayload> parkedRequests_;
    ProjectId nextProjectId_ = 1;
    std::uint64_t commandCounter_ = 0;
    bool sweepScheduled_ = false;
    bool leaseSweepScheduled_ = false;
    bool servicePending_ = false;
};

} // namespace cop::core
