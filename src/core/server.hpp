#pragma once

/// \file server.hpp
/// A Copernicus server (paper §2): all servers run identical code; their
/// role (project server vs. network relay) is determined solely by their
/// connectivity and whether they hold projects. A server:
///   - maintains a per-tenant sharded scheduling plane for the projects it
///     hosts (one CommandQueue shard per project, weighted fair-share
///     claim across them — see core/scheduler.hpp),
///   - matches workload requests against those shards, forwarding requests
///     it cannot satisfy to peer servers ("first server with available
///     commands"),
///   - applies per-tenant admission control: submissions over a project's
///     pending-depth or byte quota are rejected with a retry-after hint
///     instead of growing the backlog without bound,
///   - monitors worker heartbeats and signals failures to project servers,
///   - caches worker checkpoints so commands can transparently continue on
///     another worker after a failure,
///   - holds a lease on every assigned command, renewed by heartbeats
///     (directly, or — batched into HeartbeatSummary digests per
///     aggregation window — towards remote project servers); an expired
///     lease requeues the command from its newest checkpoint — the
///     backstop when failure signals themselves are lost,
///   - dispatches controller plugin events as command output arrives.
///
/// All messaging goes through a typed wire::Endpoint: payload structs in
/// and out, acks/retransmits/duplicate suppression below the protocol.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/envelope.hpp"
#include "core/scheduler.hpp"
#include "core/segment_store.hpp"
#include "core/wal.hpp"
#include "core/wire.hpp"
#include "net/overlay.hpp"

namespace cop::core {

/// Durable-state and tiered-storage knobs (DESIGN.md "Durability & tiered
/// storage"). The defaults reproduce the pre-durability behaviour exactly:
/// no WAL, an unbounded RAM tier that never spills.
struct DurabilityConfig {
    /// Group-commit WAL over the scheduler/lease plane. When enabled the
    /// plane can be rebuilt bit-compatibly via Server::recoverFromWal().
    bool walEnabled = false;
    /// Directory for wal.log + snapshot.bin; required when walEnabled.
    std::string walDir;
    /// Group-commit window (sim seconds). 0 = flush at the end of the
    /// current event tick — still one fdatasync per burst, and always
    /// durable before any same-tick message is delivered.
    double walFlushDelay = 0.0;
    /// Auto-snapshot (and truncate the log) after this many records since
    /// the last snapshot. 0 = snapshot only on demand.
    std::uint64_t snapshotEveryRecords = 0;
    /// RAM-tier cap of the tiered blob store holding command inputs and
    /// the remote-checkpoint cache. 0 = unbounded (nothing spills).
    std::size_t storeRamBytes = 0;
    /// Cold-tier directory; empty = per-store temp dir, created lazily.
    std::string storeDir;
    /// Compress spilled blobs (delta/XOR pre-filter + LZ byte codec).
    bool compressSpill = true;
};

struct ServerConfig {
    /// Expected worker heartbeat interval (paper default: 120 s).
    double heartbeatInterval = 120.0;
    /// A worker is declared dead after this many missed intervals.
    double failureMultiplier = 2.0;
    /// A command's lease lasts this many heartbeat intervals. Larger than
    /// failureMultiplier so the cheap path (closest-server failure
    /// detection + WorkerFailed handoff) fires first; lease expiry only
    /// catches what that path misses (lost signals, partitions).
    double leaseMultiplier = 3.0;
    /// Cache worker checkpoints for failure handoff.
    bool cacheCheckpoints = true;
    /// Park unsatisfiable workload requests and answer them as soon as new
    /// commands are queued (long polling), instead of bouncing
    /// NoWorkAvailable and having the worker poll. Requests are parked only
    /// on servers hosting unfinished projects; elsewhere the worker falls
    /// back to polling.
    bool parkRequests = true;
    /// Backpressure on the park queue: beyond this many parked workers new
    /// requests are answered NoWork with `parkRetryAfter` instead of
    /// parked. 0 = unlimited.
    std::size_t maxParkedRequests = 0;
    /// Suggested worker backoff when the park queue rejects a request.
    double parkRetryAfter = 15.0;
    /// Per-tenant *default* claim policy: projects created without an
    /// explicit ProjectSpec::claimPolicy inherit this. FirstFit preserves
    /// strict arrival order within a priority level; LargestFit bin-packs
    /// the worker's core offer (largest request first).
    ClaimPolicy claimPolicy = ClaimPolicy::FirstFit;
    /// Window over which lease renewals towards remote project servers are
    /// aggregated into one HeartbeatSummary digest per server (paper §2.3
    /// pushed further: heartbeats are summarized, never forwarded).
    /// 0 = heartbeatInterval / 4. Must stay well under
    /// (leaseMultiplier - 1) heartbeat intervals or remote leases would
    /// expire while their renewals sit in the buffer.
    double summaryWindow = 0.0;
    /// Ack/retransmit policy for reliable sends.
    wire::RetryPolicy rpc;
    /// Transmit coalescing + ack piggybacking (enabled by default).
    wire::BatchPolicy batch;
    /// WAL + tiered-store knobs (defaults: disabled/unbounded).
    DurabilityConfig durability;
};

/// Scheduling contract of one hosted project (satellite of the tenant
/// plane): everything createProject needs beyond the controller itself.
struct ProjectSpec {
    std::string name;
    /// Fair-share weight across this server's tenants (DRR).
    double weight = 1.0;
    /// Per-tenant claim policy; unset = ServerConfig::claimPolicy.
    std::optional<ClaimPolicy> claimPolicy;
    /// Admission quotas (0 = unlimited), and the retry-after hint handed
    /// to rejected submitters.
    std::size_t maxPendingCommands = 0;
    std::size_t maxPendingBytes = 0;
    double admissionRetryAfter = 30.0;
};

struct ServerStats {
    std::uint64_t workloadRequests = 0;
    std::uint64_t requestsForwarded = 0;
    std::uint64_t commandsAssigned = 0;
    std::uint64_t commandsCompleted = 0;
    std::uint64_t commandsFailed = 0;
    std::uint64_t workersFailed = 0;
    std::uint64_t commandsRequeued = 0;
    std::uint64_t heartbeatsReceived = 0;
    std::uint64_t duplicateResultsDropped = 0; ///< re-executions ignored
    std::uint64_t leasesExpired = 0;
    /// Parked requests discarded because their worker was declared dead
    /// before any work arrived (the park-queue leak fix).
    std::uint64_t parkedRequestsDropped = 0;
    /// Requests bounced with a retry-after because the park queue was full.
    std::uint64_t parkRejections = 0;
    /// Client control commands load-shed by admission control.
    std::uint64_t clientRequestsShed = 0;
    // --- Heartbeat/lease aggregation -------------------------------------
    std::uint64_t heartbeatSummariesSent = 0;
    std::uint64_t heartbeatSummariesReceived = 0;
    /// Individual lease renewals that rode a summary instead of paying
    /// their own LeaseRenew message.
    std::uint64_t leaseRenewalsAggregated = 0;
};

/// Point-in-time metrics of one tenant (project) on this server.
struct TenantMetrics {
    ProjectId id = 0;
    std::string name;
    TenantConfig config;
    TenantCounters counters;
    std::size_t pending = 0;
    std::size_t pendingBytes = 0;
    std::size_t inFlight = 0;
    std::size_t outstanding = 0; ///< submitted, not yet finished
    bool done = false;
};

/// One-call metrics surface consolidating the former stats() /
/// schedulerStats() / wireStats() triple plus the per-tenant breakdown.
struct ServerMetrics {
    ServerStats server;
    SchedulerStats scheduler; ///< aggregated over every shard
    wire::EndpointStats wire;
    StoreStats store;         ///< tiered blob store (hits/misses/spills)
    WalStats wal;             ///< zeroed when the WAL is disabled
    std::uint64_t recoveries = 0; ///< recoverFromWal() invocations
    std::vector<TenantMetrics> tenants;
};

class Server {
public:
    Server(net::OverlayNetwork& network, std::string name,
           net::KeyPair keys, ServerConfig config = {});
    ~Server(); // out-of-line: ProjectEntry holds an incomplete ContextImpl

    net::Node& node() { return node_; }
    net::NodeId id() const { return node_.id(); }
    const std::string& name() const { return node_.name(); }

    /// Declares another server a peer for workload-request forwarding.
    /// (Connectivity itself is established via OverlayNetwork::connect.)
    void addPeer(net::NodeId peer);

    /// Creates a project hosted on this server with an explicit scheduling
    /// contract (weight, claim policy, admission quotas). The controller's
    /// onProjectStart fires immediately.
    ProjectId createProject(ProjectSpec spec,
                            std::unique_ptr<Controller> controller);
    /// Convenience wrapper: default contract (weight 1, server-default
    /// claim policy, no quotas). Kept so pre-tenancy callers compile
    /// unchanged.
    ProjectId createProject(std::string name,
                            std::unique_ptr<Controller> controller);

    bool projectDone(ProjectId id) const;
    /// True when every hosted project is done.
    bool allProjectsDone() const;
    std::string projectStatus(ProjectId id) const;
    Controller& projectController(ProjectId id);

    /// The sharded scheduling plane (tests/benches introspect shards and
    /// per-tenant counters through it).
    const ShardedScheduler& scheduler() const { return scheduler_; }

    /// Consolidated point-in-time metrics with per-tenant breakdown. The
    /// three accessors below are const views over its components, kept for
    /// callers that only need one slice.
    ServerMetrics metricsSnapshot() const;
    const ServerStats& stats() const { return stats_; }
    /// Scheduler hot-path counters summed over every tenant shard.
    const SchedulerStats& schedulerStats() const { return scheduler_.stats(); }
    /// Wire-layer counters (retransmits, acks, duplicates dropped,
    /// batching/flush breakdown).
    const wire::EndpointStats& wireStats() const { return endpoint_.stats(); }
    /// The server's typed endpoint (benches/tests attach observers here).
    wire::Endpoint& endpoint() { return endpoint_; }
    const ServerConfig& config() const { return config_; }

    /// The tiered blob store backing command inputs and the remote
    /// checkpoint cache (tests/benches introspect tier stats through it).
    const SegmentStore& segmentStore() const { return *store_; }
    /// The group-commit WAL, nullptr when durability.walEnabled is false.
    const Wal* wal() const { return wal_.get(); }

    /// Crash/restart path: discards the *entire* scheduling/lease plane —
    /// scheduler shards, in-flight table, leases, park slots, worker
    /// records, completed-id set, checkpoint cache, blob store — and
    /// rebuilds it strictly from the on-disk snapshot + WAL, exactly as a
    /// freshly exec'd process would. Controller/project objects are the
    /// application layer and are left in place (they checkpoint through
    /// their own command outputs). Returns the number of log records
    /// replayed on top of the snapshot.
    std::uint64_t recoverFromWal();

private:
    class ContextImpl;

    struct ProjectEntry {
        std::string name;
        std::unique_ptr<Controller> controller;
        std::unique_ptr<ContextImpl> context;
        std::set<CommandId> outstanding;
    };

    struct WorkerRecord {
        double lastHeartbeat = 0.0;
        HeartbeatPayload lastPayload;
    };

    struct Lease {
        net::NodeId worker = net::kInvalidNode;
        double expires = 0.0;
    };

    /// BlobVault adapter the queue shards use to park command inputs in
    /// the tiered store. Input keys are the command id verbatim; the
    /// checkpoint cache shares the store under bit-63-tagged keys
    /// (cacheKey()), which command ids never set (server id << 40).
    struct InputVault : BlobVault {
        SegmentStore* store = nullptr;
        void stash(CommandId id, SharedBytes blob) override;
        SharedBytes fetch(CommandId id) override;
        void drop(CommandId id) override;
        bool holds(CommandId id) const override;
        std::size_t sizeOf(CommandId id) const override;
    };

    /// Remote-checkpoint cache metadata; the blob itself lives in the
    /// tiered store under cacheKey(id) so cold checkpoints spill to disk.
    struct CachedCheckpoint {
        ProjectId projectId = 0;
        net::NodeId projectServer = net::kInvalidNode;
    };

    static std::uint64_t cacheKey(CommandId id) {
        return id | (std::uint64_t(1) << 63);
    }

    void handleEnvelope(const wire::Envelope& env, const net::Message& msg);
    void handleWorkloadRequest(const WorkloadRequestPayload& request,
                               const net::Message& msg);
    void handleCommandOutput(const CommandOutputPayload& payload);
    void handleHeartbeat(const HeartbeatPayload& hb);
    void handleCheckpoint(const CheckpointPayload& cp);
    void handleWorkerFailed(const WorkerFailedPayload& payload);
    void handleLeaseRenew(const LeaseRenewPayload& payload);
    void handleHeartbeatSummary(const HeartbeatSummaryPayload& summary);
    void handleClientRequest(const ClientRequestPayload& request,
                             const net::Message& msg);
    void handleDeliveryFailure(const net::Message& failed);

    /// Routes a decoded result to the local project controller. First
    /// delivery wins; duplicate results of requeued-then-recovered
    /// commands are dropped.
    void dispatchResult(CommandResult result);

    /// Claims matching commands, dropping stale re-executions of commands
    /// that already completed, and grants leases for the assignment.
    std::vector<CommandSpec> claimFor(const WorkloadRequestPayload& request);
    void parkRequest(WorkloadRequestPayload request);
    /// Removes a dead worker's parked long-poll slot (and counts the drop).
    void pruneParkedRequest(net::NodeId dead);

    void grantLease(CommandId id, net::NodeId worker);
    void renewLease(CommandId id, net::NodeId worker);
    void releaseLease(CommandId id) { leases_.erase(id); }
    void ensureLeaseSweepScheduled();
    void sweepLeases();
    double leaseDuration() const {
        return config_.leaseMultiplier * config_.heartbeatInterval;
    }

    void ensureSweepScheduled();
    void sweepWorkers();
    bool hostsUnfinishedProject() const;
    /// Called after commands are queued: answers parked requests.
    void scheduleServiceWaiting();
    void serviceWaitingRequests();

    /// Buffers a worker's lease renewals towards a remote project server
    /// for the current aggregation window.
    void bufferLeaseRenewals(net::NodeId projectServer, net::NodeId worker,
                             std::vector<CommandId> commands);
    void ensureSummaryFlushScheduled();
    void flushHeartbeatSummaries();
    double summaryWindow() const {
        return config_.summaryWindow > 0.0 ? config_.summaryWindow
                                           : config_.heartbeatInterval / 4.0;
    }

    CommandId nextCommandId();

    /// Requeues everything a dead worker held: feeds cached checkpoints,
    /// requeues across shards, drops leases, and (outside recovery)
    /// signals remote project servers. Shared by sweepWorkers() and
    /// WorkerGone replay so both walk the identical state transition.
    std::size_t applyWorkerDeath(net::NodeId dead, const WorkerRecord& rec);
    /// Cached checkpoint blob for a command, empty when absent.
    SharedBytes cachedCheckpointBlob(CommandId id);

    // --- Durability (DESIGN.md "Durability & tiered storage") ------------
    /// Appends one typed record (no-op when the WAL is off or replaying).
    void walAppend(WalRecordType type, const BinaryWriter& w);
    /// Cleared scratch writer for record bodies: one record is built at a
    /// time (append sites never nest), so reusing the buffer keeps the
    /// per-record hot-path allocation-free.
    BinaryWriter& walWriter() {
        walScratch_.clear();
        return walScratch_;
    }
    /// Schedules a snapshot+truncate once the record budget is exceeded.
    void maybeSnapshot();
    /// Serializes the whole durable plane (scheduler shards with payloads,
    /// leases, workers, park slots, cache, counters) for writeSnapshot().
    std::vector<std::uint8_t> snapshotState();
    /// Inverse of snapshotState(); the stream is untrusted (IoError).
    void restoreSnapshot(std::span<const std::uint8_t> bytes);
    /// Applies one replayed record; bodies are untrusted (IoError).
    void applyWalRecord(WalRecordType type,
                        std::span<const std::uint8_t> body);

    net::OverlayNetwork* network_;
    net::Node node_;
    wire::Endpoint endpoint_;
    ServerConfig config_;
    ShardedScheduler scheduler_;
    std::vector<net::NodeId> peers_;
    std::map<ProjectId, ProjectEntry> projects_;
    std::map<net::NodeId, WorkerRecord> workers_;
    /// commandId -> provenance of the newest checkpoint cached for a
    /// *remote* project; the blob lives in store_ under cacheKey(id).
    std::map<CommandId, CachedCheckpoint> checkpointMeta_;
    std::map<CommandId, Lease> leases_;
    std::set<CommandId> completedCommands_;
    ServerStats stats_;
    std::vector<WorkloadRequestPayload> parkedRequests_;
    /// Start offset into parkedRequests_ for the next service pass, so
    /// repeated partial refills round-robin over parked workers instead of
    /// always feeding the head of the list first.
    std::size_t unparkCursor_ = 0;
    /// Lease renewals buffered per remote project server, grouped by
    /// worker, awaiting the next summary flush.
    std::map<net::NodeId, std::map<net::NodeId, std::vector<CommandId>>>
        summaryBuffers_;
    ProjectId nextProjectId_ = 1;
    std::uint64_t commandCounter_ = 0;
    bool sweepScheduled_ = false;
    bool leaseSweepScheduled_ = false;
    bool servicePending_ = false;
    bool summaryFlushScheduled_ = false;
    // --- Durability ------------------------------------------------------
    std::unique_ptr<SegmentStore> store_; ///< tiered blob store (always on)
    InputVault inputVault_;               ///< queue-facing adapter
    std::unique_ptr<Wal> wal_;            ///< nullptr when WAL disabled
    bool recovering_ = false;  ///< suppresses walAppend during replay
    bool snapshotScheduled_ = false;
    std::uint64_t recoveries_ = 0;
    BinaryWriter walScratch_;  ///< see walWriter()
};

} // namespace cop::core
