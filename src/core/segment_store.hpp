#pragma once

/// \file segment_store.hpp
/// Tiered blob store for the server's trajectory/checkpoint plane. Hot
/// blobs stay as zero-copy SharedBytes in a size-capped RAM tier fronted
/// by an LRU index; when the tier overflows, the least-recently-used blob
/// is compressed (util::codec — XOR/delta pre-filter + LZ byte codec) and
/// appended to a rolling segment file on disk. Cold fetches map a
/// transient window of the segment file (mmap + munmap around the
/// decode), so the resident set stays bounded by the RAM-tier cap no
/// matter how many blobs the project accumulates.
///
/// Tier state machine per entry (see DESIGN.md "Durability & tiered
/// storage"):
///
///     put ──> HOT ──evict──> COLD ──get──> HOT+COLD ──evict──> COLD
///              │                             │    (clean: no re-encode)
///            put (replace) invalidates any cold copy (recompression
///            on the next spill)
///
/// Segment files are append-only; erase() marks bytes dead and a segment
/// is unlinked when its last live blob dies (no in-place compaction).
/// The store is a RAM-relief tier, not a durability layer: files live
/// for the store's lifetime and are removed by the destructor.

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/shared_bytes.hpp"

namespace cop::core {

struct StoreConfig {
    /// RAM-tier cap in bytes; 0 = unbounded (nothing ever spills, the
    /// seed behavior).
    std::size_t ramBytes = 0;
    /// Spill directory. Empty with a nonzero cap = a per-store directory
    /// under the system temp dir, created lazily on first spill.
    std::string dir;
    /// Pre-filter + LZ compression on spilled blobs (codec falls back to
    /// stored frames for incompressible input either way).
    bool compress = true;
    /// Roll to a new segment file beyond this many bytes.
    std::size_t maxSegmentBytes = std::size_t(64) << 20;
    /// Decode-allocation cap for cold fetches (hostile-frame guard).
    std::size_t maxBlobBytes = std::size_t(1) << 30;
};

struct StoreStats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;        ///< gets served from the RAM tier
    std::uint64_t misses = 0;      ///< gets decoded from a segment file
    std::uint64_t spills = 0;      ///< blobs written to the cold tier
    std::uint64_t evictions = 0;   ///< hot copies dropped by the LRU cap
    std::uint64_t recompressions = 0; ///< re-spills after a replace/dirty
    std::uint64_t erases = 0;
    std::uint64_t spilledRawBytes = 0;
    std::uint64_t spilledCompressedBytes = 0;
    std::uint64_t segmentsCreated = 0;
    std::uint64_t segmentsUnlinked = 0;
    std::size_t ramBytesUsed = 0;  ///< current hot-tier footprint
    std::size_t entries = 0;       ///< current live blobs (hot or cold)
    std::size_t coldBytesLive = 0; ///< live compressed bytes on disk
};

class SegmentStore {
public:
    explicit SegmentStore(StoreConfig cfg = {});
    ~SegmentStore();
    SegmentStore(const SegmentStore&) = delete;
    SegmentStore& operator=(const SegmentStore&) = delete;

    /// Inserts or replaces a blob. Replacing invalidates any cold copy.
    void put(std::uint64_t key, SharedBytes blob);
    /// Fetches a blob, promoting a cold copy back into the RAM tier.
    /// Returns nullopt for unknown keys; throws IoError if a segment
    /// frame fails validation (truncated file, CRC mismatch).
    std::optional<SharedBytes> get(std::uint64_t key);
    /// Drops a blob from both tiers. Returns false for unknown keys.
    bool erase(std::uint64_t key);
    bool contains(std::uint64_t key) const;
    /// Raw (uncompressed) size of a blob, 0 for unknown keys.
    std::size_t sizeOf(std::uint64_t key) const;
    std::size_t size() const { return entries_.size(); }
    /// Wipes both tiers (crash simulation / recovery rebuild).
    void clear();

    const StoreStats& stats() const;
    const StoreConfig& config() const { return cfg_; }

private:
    struct SegmentRef {
        std::uint64_t segment = 0; ///< index into segments_
        std::uint64_t offset = 0;  ///< frame offset within the file
        std::uint32_t frameLen = 0;
        std::uint32_t rawLen = 0;
    };
    struct Entry {
        SharedBytes hot;                 ///< empty when cold-only
        std::optional<SegmentRef> cold;
        bool hotValid = false;
        std::list<std::uint64_t>::iterator lruPos; ///< valid iff hotValid
        bool everSpilled = false;
        std::uint32_t rawLen = 0;
    };
    struct Segment {
        std::string path;
        int fd = -1;
        std::uint64_t bytes = 0;     ///< append offset
        std::uint64_t liveBlobs = 0;
        std::uint64_t liveBytes = 0; ///< live frame bytes (stats)
        bool open = false;
    };

    void touch(Entry& e, std::uint64_t key);
    void dropHot(std::uint64_t key, Entry& e);
    void enforceCap();
    void spill(std::uint64_t key, Entry& e);
    SegmentRef appendFrame(const std::vector<std::uint8_t>& frame,
                           std::uint32_t rawLen);
    std::vector<std::uint8_t> readFrame(const SegmentRef& ref);
    void releaseCold(Entry& e);
    Segment& activeSegment();
    void ensureDir();

    StoreConfig cfg_;
    std::map<std::uint64_t, Entry> entries_;
    std::list<std::uint64_t> lru_; ///< front = most recent, hot keys only
    std::vector<Segment> segments_;
    std::size_t ramBytes_ = 0;
    bool dirReady_ = false;
    mutable StoreStats stats_;
};

} // namespace cop::core
