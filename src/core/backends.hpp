#pragma once

/// \file backends.hpp
/// Executable implementations plugged into workers:
///
///  - makeMdrunExecutable: the real thing — restores an mdlib Simulation
///    from the command's checkpoint, integrates the requested number of
///    steps, and returns the produced trajectory segment plus a fresh
///    checkpoint. Its *virtual* duration comes from a wall-time model so
///    DES runs are deterministic.
///  - makeFeSampleExecutable: draws free-energy work samples for one
///    lambda window of the BAR controller.
///  - makeSimulatedExecutable: no computation at all; duration and output
///    size come entirely from a performance model. This is what the
///    scaling study (Figs. 7-9) uses, mirroring how the paper "simulated
///    the controller's activity".

#include <functional>

#include "core/executable.hpp"
#include "fe/harmonic.hpp"
#include "mdlib/simulation.hpp"

namespace cop::core {

/// Virtual seconds a command takes: f(steps, cores).
using DurationModel = std::function<double(std::int64_t steps, int cores)>;

/// A duration model with perfect scaling at `stepSecondsOneCore` per step.
DurationModel linearDurationModel(double stepSecondsOneCore);

/// Wire format helpers for mdrun payloads.
struct MdrunOutput {
    md::Trajectory segment;
    std::vector<std::uint8_t> checkpoint;

    std::vector<std::uint8_t> encode() const;
    static MdrunOutput decode(std::span<const std::uint8_t> data);
};

/// Builds the "mdrun" executable: input payload must be a Simulation
/// checkpoint blob (md::Simulation::checkpoint()).
ExecutableHandler makeMdrunExecutable(DurationModel duration);

/// Free-energy sampling window: input payload encodes the sampled and
/// target harmonic states, sample count, beta and RNG seed; the output
/// payload is the vector of work values.
struct FeSampleInput {
    fe::HarmonicState sampled;
    fe::HarmonicState target;
    std::uint64_t samples = 1000;
    double beta = 1.0;
    std::uint64_t seed = 1;

    std::vector<std::uint8_t> encode() const;
    static FeSampleInput decode(std::span<const std::uint8_t> data);
};
ExecutableHandler makeFeSampleExecutable(DurationModel duration);

/// Virtual executable for the scaling study: produces `outputBytes` of
/// filler output after a model-determined duration.
ExecutableHandler makeSimulatedExecutable(DurationModel duration,
                                          std::size_t outputBytes);

} // namespace cop::core
