/// Quickstart: simulate the villin-like Gō model, watch it stay folded,
/// checkpoint it, and continue the run bit-exactly from the checkpoint —
/// the primitive Copernicus uses to move commands between workers.
///
///   $ ./build/examples/quickstart

#include <cstdio>

#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "mdlib/units.hpp"

using namespace cop;

int main() {
    // 1. Build the model: a 35-residue three-helix bundle with villin's
    //    topology, turned into a structure-based (Gō) force field.
    const auto model = md::villinGoModel();
    std::printf("model: %s\n", model.topology.summary().c_str());

    // 2. Set up Langevin dynamics at the production temperature and run
    //    one 50 ns command segment from the native state.
    auto sim = md::Simulation::forGoModel(model, model.native,
                                          md::villinSimulationConfig(42));
    sim.initializeVelocities();
    sim.run(md::kSegmentSteps);

    const double rmsdA =
        md::toAngstrom(md::rmsd(model.native, sim.state().positions));
    std::printf("after %.0f ns: RMSD to native %.2f A, Q = %.2f, "
                "T = %.2f eps\n",
                md::stepsToNs(double(sim.state().step)), rmsdA,
                md::nativeContactFraction(model.topology,
                                          sim.state().positions),
                sim.temperature());
    std::printf("trajectory: %zu frames recorded\n",
                sim.trajectory().numFrames());

    // 3. Checkpoint, continue both copies, and verify they agree exactly.
    const auto blob = sim.checkpoint();
    std::printf("checkpoint: %zu bytes\n", blob.size());

    auto restored = md::Simulation::restore(blob);
    sim.run(1000);
    restored.run(1000);
    const double divergence = md::rmsd(sim.state().positions,
                                       restored.state().positions);
    std::printf("restored copy after 1000 more steps: divergence %.2e "
                "(bit-exact continuation)\n",
                divergence);
    return divergence == 0.0 ? 0 : 1;
}
