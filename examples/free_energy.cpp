/// The Copernicus BAR free-energy plugin (paper §5): a lambda chain of
/// sampling windows is farmed out as commands; sampling continues —
/// adaptively concentrated on the noisiest windows — until the total
/// standard error reaches the user's target (the §2 stop criterion).
///
///   $ ./build/examples/free_energy

#include <cstdio>

#include "core/backends.hpp"
#include "core/bar_controller.hpp"
#include "core/copernicus.hpp"
#include "util/logging.hpp"

using namespace cop;
using namespace cop::core;

int main() {
    Logger::instance().setLevel(LogLevel::Warn);

    Deployment dep(1976);
    auto& server = dep.addServer("fe-server");
    for (int w = 0; w < 3; ++w) {
        ExecutableRegistry reg;
        reg.add("fe_sample",
                makeFeSampleExecutable(linearDurationModel(0.02)));
        dep.addWorker("node" + std::to_string(w), server, WorkerConfig{},
                      std::move(reg), links::intraCluster());
    }

    BarControllerParams bp;
    bp.first = {1.0, 0.0}; // soft harmonic well at the origin
    bp.last = {8.0, 2.0};  // stiff well displaced by 2
    bp.numWindows = 6;
    bp.samplesPerCommand = 2000;
    bp.targetError = 0.01; // kT
    bp.maxRounds = 50;
    auto controller = std::make_unique<BarController>(bp);
    auto* barCtrl = controller.get();
    server.createProject("free_energy", std::move(controller));

    std::printf("sampling lambda chain until total error <= %.3f kT...\n",
                bp.targetError);
    const bool done = dep.runUntilDone(1e12);

    const auto& est = *barCtrl->estimate();
    std::printf("\nwindow breakdown after %d adaptive rounds:\n",
                barCtrl->rounds());
    for (std::size_t w = 0; w < est.windows.size(); ++w)
        std::printf("  window %zu: deltaF = %+.4f +/- %.4f kT "
                    "(converged in %d iterations)\n",
                    w, est.windows[w].deltaF, est.windows[w].standardError,
                    est.windows[w].iterations);

    std::printf("\ntotal:    deltaF = %+.4f +/- %.4f kT\n",
                est.totalDeltaF, est.totalError);
    std::printf("analytic: deltaF = %+.4f kT (0.5 ln(k1/k0))\n",
                barCtrl->analyticDeltaF());
    const double pull =
        std::abs(est.totalDeltaF - barCtrl->analyticDeltaF()) /
        est.totalError;
    std::printf("agreement: %.2f standard errors\n", pull);
    return done && pull < 5.0 ? 0 : 1;
}
