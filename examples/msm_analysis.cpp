/// MSM analysis walkthrough: generate reversible-folding trajectories of
/// the beta-hairpin at its melting temperature, build a
/// Markov state model, coarse-grain it into metastable macrostates,
/// compute the folding rate with transition path theory, attach Bayesian
/// error bars, and export the folded structure as a PDB for inspection.
///
///   $ ./build/examples/msm_analysis [out.pdb]

#include <cstdio>

#include "mdlib/observables.hpp"
#include "mdlib/pdb.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "mdlib/units.hpp"
#include "msm/pipeline.hpp"
#include "msm/spectral.hpp"

using namespace cop;

int main(int argc, char** argv) {
    // 1. Sample: hairpin trajectories at the melting temperature, where
    //    folding is reversible and both basins interconvert repeatedly —
    //    the regime where a two-state Markov model is textbook-clean.
    const auto model = md::hairpinGoModel();
    std::vector<md::Trajectory> trajs;
    for (std::size_t s = 0; s < 6; ++s) {
        md::SimulationConfig cfg;
        cfg.integrator.kind = md::IntegratorKind::LangevinBAOAB;
        cfg.integrator.temperature = 1.02; // hairpin melting point
        cfg.integrator.friction = 0.3;
        cfg.sampleInterval = 20;
        cfg.seed = 500 + s;
        auto sim = md::Simulation::forGoModel(model, model.native, cfg);
        sim.initializeVelocities();
        sim.run(60000);
        trajs.push_back(sim.trajectory());
    }
    std::printf("sampled %zu trajectories, %zu frames each\n", trajs.size(),
                trajs[0].numFrames());

    // 2. Build the MSM (cluster -> count -> reversible MLE).
    msm::MsmPipelineParams pp;
    pp.numClusters = 30;
    pp.snapshotStride = 2;
    pp.lag = 1;
    const auto result = msm::buildMsm(trajs, pp);
    const auto& mm = result.model;
    std::printf("MSM: %zu microstates (%zu in largest connected subset)\n",
                result.clustering.numClusters(), mm.numStates());
    const auto timescales = mm.impliedTimescales(3);
    for (std::size_t k = 0; k < timescales.size(); ++k)
        std::printf("  implied timescale %zu: %.1f snapshots\n", k + 1,
                    timescales[k]);

    // 3. Macrostates: coarse-grain into two metastable sets.
    const auto macro = msm::identifyMacrostates(mm, 2, 7);
    std::printf("macrostates: populations %.2f / %.2f, metastability "
                "%.3f\n",
                macro.populations[0], macro.populations[1],
                macro.metastability);

    // 4. Folded/unfolded sets by native-contact fraction Q of the
    //    microstate centers (robust near the melting temperature, where
    //    folded-basin fluctuations inflate RMSD).
    std::vector<int> foldedSet, unfoldedSet;
    for (std::size_t a = 0; a < mm.numStates(); ++a) {
        const int micro = mm.activeState(a);
        const double q = md::nativeContactFraction(
            model.topology, result.centers[std::size_t(micro)]);
        if (q > 0.8)
            foldedSet.push_back(int(a));
        else if (q < 0.35)
            unfoldedSet.push_back(int(a));
    }
    std::printf("state sets: %zu folded, %zu unfolded microstates\n",
                foldedSet.size(), unfoldedSet.size());

    // 5. Transition path theory: folding rate and mean transit time.
    if (!foldedSet.empty() && !unfoldedSet.empty()) {
        const auto tpt =
            msm::transitionPathTheory(mm, unfoldedSet, foldedSet);
        const double nsPerLag = md::stepsToNs(
            double(pp.lag * pp.snapshotStride * 20));
        std::printf("TPT: rate %.3g / lag (MFPT %.0f mapped ns)\n",
                    tpt.rate, tpt.mfpt * nsPerLag);
    }

    // 6. Bayesian error bar on the equilibrium folded population.
    Rng rng(99);
    const auto uncertainty = msm::transitionMatrixUncertainty(
        mm.countMatrix(),
        [&](const msm::DenseMatrix& t) {
            const auto pi = msm::stationaryOf(t, 20000, 1e-10);
            double f = 0.0;
            for (int a : foldedSet) f += pi[std::size_t(a)];
            return f;
        },
        100, rng);
    std::printf("equilibrium folded fraction: %.2f +/- %.2f (posterior)\n",
                uncertainty.mean, uncertainty.stddev);

    // 7. Export the most populated folded microstate next to the native
    //    structure for visual comparison.
    if (!foldedSet.empty()) {
        const auto& pi = mm.stationaryDistribution();
        int best = foldedSet[0];
        for (int a : foldedSet)
            if (pi[std::size_t(a)] > pi[std::size_t(best)]) best = a;
        const int micro = mm.activeState(std::size_t(best));
        auto predicted = result.centers[std::size_t(micro)];
        md::superimpose(model.native, predicted);
        const std::string path = argc > 1 ? argv[1] : "msm_analysis.pdb";
        const auto pdb = md::pdbString(
            {model.native, predicted}, "native (model 1) vs MSM top folded "
                                       "state (model 2)");
        cop::writeFile(path,
                       std::span(reinterpret_cast<const std::uint8_t*>(
                                     pdb.data()),
                                 pdb.size()));
        std::printf("wrote %s (native + predicted, superimposed; RMSD "
                    "%.2f A)\n",
                    path.c_str(),
                    md::toAngstrom(md::rmsd(model.native, predicted)));
    }
    return 0;
}
