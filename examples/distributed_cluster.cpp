/// The paper's Fig. 1 scenario: two sites on different continents, each
/// with its own head-node server and workers, cooperating on one project
/// over an authenticated overlay — including a worker crash mid-command,
/// detected by heartbeat timeout and transparently recovered from the
/// checkpoints its server cached.
///
///   $ ./build/examples/distributed_cluster

#include <cstdio>

#include "core/backends.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/proteins.hpp"
#include "util/logging.hpp"

using namespace cop;
using namespace cop::core;

namespace {

ExecutableRegistry mdRegistry() {
    ExecutableRegistry reg;
    // ~17 virtual minutes per 50 ns command: slow enough that several
    // heartbeats (120 s) and checkpoints happen during each run.
    reg.add("mdrun", makeMdrunExecutable(linearDurationModel(0.5)));
    return reg;
}

} // namespace

int main() {
    Logger::instance().setLevel(LogLevel::Info);

    Deployment dep(17);
    // Stockholm: gateway + project server; Palo Alto: one cluster head.
    auto& stockholm = dep.addServer("stockholm-gw");
    auto& paloAlto = dep.addServer("paloalto-head");
    dep.connectServers(stockholm, paloAlto, links::wideArea());

    WorkerConfig wc;
    wc.platform = "OpenMPI";
    wc.heartbeatInterval = 120.0;
    auto& w0 = dep.addWorker("sth-node0", stockholm, wc, mdRegistry(),
                             links::intraCluster());
    dep.addWorker("sth-node1", stockholm, wc, mdRegistry(),
                  links::intraCluster());
    dep.addWorker("pa-node0", paloAlto, wc, mdRegistry(),
                  links::intraCluster());
    dep.addWorker("pa-node1", paloAlto, wc, mdRegistry(),
                  links::intraCluster());

    // Untrusted nodes cannot join: the key exchange is mandatory.
    try {
        net::Node rogue(dep.network(), "rogue",
                        net::KeyPair::generate(666));
        dep.network().connect(rogue.id(), stockholm.id(), {});
        std::printf("ERROR: rogue node connected!\n");
        return 1;
    } catch (const Error&) {
        std::printf("rogue node without exchanged keys was refused "
                    "(SSL-style mutual auth)\n");
    }

    // A small adaptive MSM project hosted in Stockholm.
    auto model = md::villinGoModel();
    MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(model, 3, 5);
    mp.tasksPerStart = 3;
    mp.segmentSteps = md::kSegmentSteps;
    mp.maxGenerations = 2;
    mp.pipeline.numClusters = 40;
    mp.pipeline.snapshotStride = 3;
    mp.simulation = md::villinSimulationConfig();
    mp.seed = 5;
    auto controller = std::make_unique<MsmController>(mp);
    auto* msm = controller.get();
    stockholm.createProject("msm_villin", std::move(controller));

    // Crash a Stockholm worker mid-run; its commands restart elsewhere
    // from the cached checkpoints.
    w0.failAfter(400.0);

    const bool done = dep.runUntilDone(1e12);

    std::printf("\nproject %s after %.1f virtual hours\n",
                done ? "completed" : "DID NOT COMPLETE",
                dep.loop().now() / 3600.0);
    std::printf("stockholm server: %llu commands completed, %llu workers "
                "failed, %llu commands requeued\n",
                (unsigned long long)stockholm.stats().commandsCompleted,
                (unsigned long long)stockholm.stats().workersFailed,
                (unsigned long long)stockholm.stats().commandsRequeued);
    std::printf("wide-area link: %llu messages, %.2f MB (ensemble tier "
                "of Fig. 6)\n",
                (unsigned long long)dep.network()
                    .linkStats(stockholm.id(), paloAlto.id())
                    .messages,
                double(dep.network()
                           .linkStats(stockholm.id(), paloAlto.id())
                           .bytes) /
                    1e6);
    std::printf("best structure found: %.2f A from native\n",
                msm->minRmsdAngstrom());
    return done && stockholm.stats().workersFailed >= 1 ? 0 : 1;
}
