/// The paper's flagship scenario at example scale: fold the villin-like
/// protein with MSM-driven parallel adaptive sampling — unfolded starts,
/// a swarm of trajectory commands distributed over workers, periodic
/// clustering, adaptive respawning — and predict the native state blind
/// from the highest-equilibrium-population cluster.
///
///   $ ./build/examples/villin_folding

#include <cstdio>

#include "core/backends.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/units.hpp"
#include "util/logging.hpp"

using namespace cop;
using namespace cop::core;

int main() {
    Logger::instance().setLevel(LogLevel::Warn);

    // A project server plus four workers on its cluster.
    Deployment dep(2011);
    auto& server = dep.addServer("project-server");
    for (int w = 0; w < 4; ++w) {
        ExecutableRegistry reg;
        reg.add("mdrun", makeMdrunExecutable(linearDurationModel(0.5)));
        dep.addWorker("node" + std::to_string(w), server, WorkerConfig{},
                      std::move(reg), links::intraCluster());
    }

    // The MSM adaptive-sampling project: 4 unfolded starts x 4 tasks,
    // clustering into 60 microstates after every 16 finished segments.
    auto model = md::villinGoModel();
    MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(model, 4, 99);
    mp.tasksPerStart = 4;
    mp.segmentSteps = md::kSegmentSteps;
    mp.maxGenerations = 4;
    mp.pipeline.numClusters = 60;
    mp.pipeline.snapshotStride = 3;
    mp.simulation = md::villinSimulationConfig();
    mp.seed = 2011;
    auto controller = std::make_unique<MsmController>(mp);
    auto* msm = controller.get();
    const auto pid = server.createProject("msm_villin",
                                          std::move(controller));

    // A monitoring client, as the paper's command-line client would.
    auto& client = dep.addClient("laptop", server, links::wideArea());

    std::printf("running adaptive sampling...\n");
    const bool done = dep.runUntilDone(1e12);

    client.requestStatus(server.id(), pid);
    dep.loop().run(64);
    std::printf("\nclient view: %s\n", client.lastStatus().c_str());

    std::printf("\nper-generation progress:\n");
    for (const auto& rec : msm->history())
        std::printf("  gen %d: %5zu snapshots, min RMSD %.2f A, "
                    "folded %.1f%%, blind prediction %.2f A\n",
                    rec.generation, rec.totalSnapshots,
                    rec.minRmsdAngstrom, 100.0 * rec.foldedFraction,
                    rec.predictedRmsdAngstrom);

    std::printf("\nresult: %s; best structure %.2f A from native; "
                "blind prediction %.2f A\n",
                done ? "project completed" : "INCOMPLETE",
                msm->minRmsdAngstrom(),
                msm->history().back().predictedRmsdAngstrom);
    return done ? 0 : 1;
}
