/// \file envelope_fuzz.cpp
/// Fuzz harness over the untrusted-bytes surface: core::wire payload
/// decoding (everything reachable through wire::decodePayload) and the
/// util::BinaryReader primitives themselves.
///
/// Input format: byte 0 selects the claimed net::MessageType (mod the
/// number of message types); the remaining bytes are the payload handed to
/// the decoder exactly as a hostile peer could. The harness treats
/// cop::Error (IoError on truncation/corruption) as the *expected* outcome
/// for malformed input; anything else — std::bad_alloc from a hostile
/// length prefix, std::length_error, UB caught by ASan/UBSan, a crash — is
/// a finding.
///
/// Three build/run modes (see fuzz/CMakeLists.txt and tools/run_fuzz.sh):
///  - clang + -fsanitize=fuzzer (COP_FUZZ_LIBFUZZER): libFuzzer explores;
///  - any compiler, no libFuzzer: `envelope_fuzz <files-or-dirs>` replays
///    a corpus deterministically (this is the plain-ctest smoke mode);
///  - `envelope_fuzz --generate <dir>` writes the seed corpus: one
///    well-formed envelope per payload type straight from its serializer,
///    plus hand-picked malformed shapes (truncated, trailing bytes,
///    hostile length prefixes).

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/envelope.hpp"
#include "core/wire.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace {

/// Count of net::MessageType enumerators (message.hpp); the selector byte
/// is reduced mod this so every tag stays reachable as the enum grows.
constexpr unsigned kMessageTypeCount = 16;

void drainReaderPrimitives(std::span<const std::uint8_t> bytes) {
    using cop::BinaryReader;
    // Each primitive gets a fresh reader: a throw from one must not mask
    // an allocation bug in another.
    try {
        BinaryReader(bytes).readString();
    } catch (const cop::Error&) {
    }
    try {
        BinaryReader(bytes).readBytes();
    } catch (const cop::Error&) {
    }
    try {
        BinaryReader(bytes).readVector<double>();
    } catch (const cop::Error&) {
    }
    try {
        BinaryReader(bytes).readVector<std::uint64_t>();
    } catch (const cop::Error&) {
    }
    try {
        BinaryReader(bytes).readVec3Vector();
    } catch (const cop::Error&) {
    }
    try {
        BinaryReader r(bytes);
        r.readHeader("COPS");
    } catch (const cop::Error&) {
    }
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    if (size < 1) return 0;
    cop::net::Message msg;
    msg.type = static_cast<cop::net::MessageType>(data[0] % kMessageTypeCount);
    msg.payload.assign(data + 1, data + size);

    // Must never throw (returns nullopt on malformed), never allocate
    // proportionally to a hostile length prefix, never read out of bounds.
    (void)cop::core::wire::decodePayload(msg);

    drainReaderPrimitives(msg.payload);
    return 0;
}

#ifndef COP_FUZZ_LIBFUZZER

// ---- Standalone driver: corpus replay + seed-corpus generation ---------

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;
using cop::core::SharedBytes;
using namespace cop::core;

void writeSeed(const fs::path& dir, const std::string& name,
               cop::net::MessageType type,
               const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> bytes;
    bytes.push_back(std::uint8_t(type));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
}

/// One well-formed seed per payload type, produced by the payload's own
/// serializer so the corpus tracks the wire format by construction.
int generateCorpus(const fs::path& dir) {
    fs::create_directories(dir);

    WorkloadRequestPayload req;
    req.worker = 9;
    req.platform = "linux-x86_64";
    req.cores = 8;
    req.executables = {"mdrun", "fe_sample"};
    req.visited = {1, 2, 3};
    writeSeed(dir, "workload_request", req.kType, req.encode());

    CommandSpec spec;
    spec.id = 42;
    spec.projectId = 7;
    spec.projectServer = 3;
    spec.executable = "mdrun";
    spec.steps = 50000;
    spec.preferredCores = 4;
    spec.priority = 2;
    spec.trajectoryId = 5;
    spec.generation = 1;
    spec.input = SharedBytes{1, 2, 3, 4};
    WorkloadAssignPayload assign;
    assign.commands = {spec};
    writeSeed(dir, "workload_assign", assign.kType, assign.encode());

    HeartbeatPayload hb;
    hb.worker = 9;
    hb.running = {42, 43};
    hb.projectServers = {3, 3};
    writeSeed(dir, "heartbeat", hb.kType, hb.encode());

    CheckpointPayload cp;
    cp.commandId = 42;
    cp.projectId = 7;
    cp.projectServer = 3;
    cp.blob = SharedBytes{5, 6, 7, 8, 9};
    writeSeed(dir, "checkpoint", cp.kType, cp.encode());

    WorkerFailedPayload wf;
    wf.worker = 9;
    wf.commands = {42, 43};
    wf.checkpoints = {SharedBytes{1, 2}, SharedBytes{}};
    writeSeed(dir, "worker_failed", wf.kType, wf.encode());

    CommandResult result;
    result.commandId = 42;
    result.projectId = 7;
    result.trajectoryId = 5;
    result.generation = 1;
    result.success = true;
    result.output = {9, 8, 7};
    result.simSeconds = 1.5;
    CommandOutputPayload out;
    out.result = result;
    out.projectServer = 3;
    writeSeed(dir, "command_output", out.kType, out.encode());

    LeaseRenewPayload lr;
    lr.worker = 9;
    lr.commands = {42, 43, 44};
    writeSeed(dir, "lease_renew", lr.kType, lr.encode());

    HeartbeatSummaryPayload hs;
    hs.edge = 4;
    hs.workers = {9, 10};
    hs.counts = {2, 1};
    hs.commands = {42, 43, 44};
    writeSeed(dir, "heartbeat_summary", hs.kType, hs.encode());

    // Hostile summary shapes: the per-worker counts must stay parallel
    // to the worker list and tile the flattened command list exactly.
    {
        cop::BinaryWriter w;
        w.write(std::int32_t(4));
        w.write(std::uint64_t(2)); // two workers...
        w.write(std::int32_t(9));
        w.write(std::int32_t(10));
        w.write(std::uint64_t(1)); // ...but one count
        w.write(std::uint32_t(1));
        w.write(std::uint64_t(1));
        w.write(std::uint64_t(42));
        writeSeed(dir, "summary_count_mismatch", hs.kType, w.takeBuffer());
    }
    {
        cop::BinaryWriter w;
        w.write(std::int32_t(4));
        w.write(std::uint64_t(1));
        w.write(std::int32_t(9));
        w.write(std::uint64_t(1));
        w.write(std::uint32_t(3)); // claims three commands...
        w.write(std::uint64_t(2)); // ...two present
        w.write(std::uint64_t(42));
        w.write(std::uint64_t(43));
        writeSeed(dir, "summary_tiling_mismatch", hs.kType, w.takeBuffer());
    }

    NoWorkPayload nw;
    nw.worker = 9;
    writeSeed(dir, "no_work", nw.kType, nw.encode());

    ClientRequestPayload creq;
    creq.projectId = 7;
    creq.command = "status";
    writeSeed(dir, "client_request", creq.kType, creq.encode());

    ClientResponsePayload cresp;
    cresp.text = "9 commands pending";
    writeSeed(dir, "client_response", cresp.kType, cresp.encode());

    AckPayload ack;
    ack.ackedMessageId = 1234;
    writeSeed(dir, "ack", ack.kType, ack.encode());

    // A mixed coalesced frame: data + piggybacked ack, the shape the
    // batching endpoint actually emits.
    BatchPayload batch;
    BatchEntry be1;
    be1.type = hb.kType;
    be1.messageId = 77;
    be1.requireAck = true;
    be1.payload = hb.encode();
    BatchEntry be2;
    be2.type = ack.kType;
    be2.messageId = 78;
    be2.payload = ack.encode();
    batch.entries = {be1, be2};
    writeSeed(dir, "batch_mixed", batch.kType, batch.encode());

    // Malformed shapes the decode hardening must keep rejecting.
    auto hbBytes = hb.encode();
    writeSeed(dir, "malformed_truncated", hb.kType,
              {hbBytes.begin(), hbBytes.begin() + long(hbBytes.size() / 2)});
    auto trailing = hbBytes;
    trailing.push_back(0x00);
    writeSeed(dir, "malformed_trailing", hb.kType, trailing);
    auto hostile = hbBytes;
    const std::uint64_t huge = std::uint64_t(-1);
    std::memcpy(hostile.data() + 4, &huge, sizeof(huge));
    writeSeed(dir, "malformed_huge_count", hb.kType, hostile);
    writeSeed(dir, "malformed_empty_payload", hb.kType, {});

    // Batch-specific hostile shapes: a recursion bomb (batch-in-batch),
    // an entry count claiming 2^64-1 sub-envelopes, and trailing garbage
    // after a well-formed batch.
    auto nested = batch;
    nested.entries[0].type = batch.kType;
    nested.entries[0].payload = batch.encode();
    writeSeed(dir, "batch_malformed_nested", batch.kType, nested.encode());
    auto batchBytes = batch.encode();
    auto batchHostile = batchBytes;
    std::memcpy(batchHostile.data(), &huge, sizeof(huge));
    writeSeed(dir, "batch_malformed_huge_count", batch.kType, batchHostile);
    auto batchTrailing = batchBytes;
    batchTrailing.push_back(0xEE);
    writeSeed(dir, "batch_malformed_trailing", batch.kType, batchTrailing);

    std::printf("wrote seed corpus to %s\n", dir.string().c_str());
    return 0;
}

int replayFile(const fs::path& file) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.string().c_str());
        return 1;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc >= 3 && std::string(argv[1]) == "--generate")
        return generateCorpus(argv[2]);
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <corpus-file-or-dir>...\n"
                     "       %s --generate <dir>\n",
                     argv[0], argv[0]);
        return 2;
    }
    std::size_t replayed = 0;
    for (int i = 1; i < argc; ++i) {
        const fs::path p(argv[i]);
        if (fs::is_directory(p)) {
            for (const auto& entry : fs::directory_iterator(p)) {
                if (!entry.is_regular_file()) continue;
                if (replayFile(entry.path()) != 0) return 1;
                ++replayed;
            }
        } else {
            if (replayFile(p) != 0) return 1;
            ++replayed;
        }
    }
    std::printf("replayed %zu corpus inputs clean\n", replayed);
    return replayed == 0 ? 1 : 0; // an empty corpus is a broken setup
}

#endif // !COP_FUZZ_LIBFUZZER
