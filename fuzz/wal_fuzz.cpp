/// \file wal_fuzz.cpp
/// Fuzz harness over the recovery-path untrusted-bytes surface (ISSUE 9):
/// the WAL log-stream parser, the snapshot container parser, and the blob
/// codec's frame decoder. These are the three byte formats a crashed (or
/// hostile) disk hands the server at recovery, so each must reject
/// malformed input with cop::IoError — never a hostile-length allocation,
/// an out-of-bounds read, or trailing garbage silently accepted.
///
/// Input format: byte 0 selects the surface (mod 3) — 0: Wal::parseLog,
/// 1: Wal::parseSnapshot, 2: util::decode — and the remaining bytes are
/// the raw file/frame image. cop::Error is the *expected* outcome for
/// malformed input; anything else (std::bad_alloc, std::length_error, UB
/// caught by ASan/UBSan, a crash) is a finding.
///
/// Same three modes as envelope_fuzz (fuzz/CMakeLists.txt,
/// tools/run_fuzz.sh): libFuzzer exploration under clang, deterministic
/// corpus replay via ctest on any toolchain, and `--generate <dir>` to
/// rewrite the committed seed corpus — well-formed images from the real
/// writers plus the hostile shapes recovery must survive (truncated
/// record, bad CRC mid-log, snapshot length/count mismatch, nested codec
/// frame, trailing garbage, hostile length prefixes).

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/wal.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"

namespace {

constexpr std::size_t kMaxBytes = std::size_t(1) << 20;

void fuzzOne(std::span<const std::uint8_t> bytes) {
    if (bytes.empty()) return;
    const std::uint8_t surface = bytes[0] % 3;
    const auto body = bytes.subspan(1);
    try {
        switch (surface) {
        case 0: {
            std::size_t torn = 0;
            cop::core::Wal::parseLog(
                body,
                [](cop::core::WalRecordType,
                   std::span<const std::uint8_t> rec) {
                    // Touch every body byte: OOB here is the bug class
                    // ASan exists to catch.
                    volatile std::uint8_t sink = 0;
                    for (const std::uint8_t b : rec) sink = sink ^ b;
                    (void)sink;
                },
                kMaxBytes, &torn);
            break;
        }
        case 1:
            (void)cop::core::Wal::parseSnapshot(body, kMaxBytes);
            break;
        default:
            (void)cop::util::decode(body, kMaxBytes);
            break;
        }
    } catch (const cop::Error&) {
        // Expected rejection path for malformed input.
    }
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    fuzzOne({data, size});
    return 0;
}

#ifndef COP_FUZZ_LIBFUZZER

// ---- Standalone driver: corpus replay + seed-corpus generation ---------

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

void writeSeed(const fs::path& dir, const std::string& name,
               std::uint8_t surface,
               const std::vector<std::uint8_t>& image) {
    std::vector<std::uint8_t> bytes;
    bytes.push_back(surface);
    bytes.insert(bytes.end(), image.begin(), image.end());
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
}

/// One WAL record frame exactly as Wal::flush writes it:
/// [u32 bodyLen][u32 crc32(body)][body = u8 type + fields].
std::vector<std::uint8_t> logRecord(std::uint8_t type,
                                    std::vector<std::uint8_t> fields) {
    std::vector<std::uint8_t> body;
    body.push_back(type);
    body.insert(body.end(), fields.begin(), fields.end());
    const std::uint32_t len = std::uint32_t(body.size());
    const std::uint32_t crc = cop::util::crc32(body);
    std::vector<std::uint8_t> out;
    for (int i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(len >> (8 * i)));
    for (int i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(crc >> (8 * i)));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

std::vector<std::uint8_t> snapshotImage(std::vector<std::uint8_t> state) {
    std::vector<std::uint8_t> out = {'C', 'P', 'W', 'S'};
    const std::uint64_t len = state.size();
    const std::uint32_t crc = cop::util::crc32(state);
    out.resize(16);
    std::memcpy(out.data() + 4, &len, 8);
    std::memcpy(out.data() + 12, &crc, 4);
    out.insert(out.end(), state.begin(), state.end());
    return out;
}

int generateCorpus(const fs::path& dir) {
    fs::create_directories(dir);
    using cop::core::WalRecordType;
    const auto push = std::uint8_t(WalRecordType::Push);
    const auto claim = std::uint8_t(WalRecordType::Claim);

    // -- surface 0: the log stream --------------------------------------
    auto log = logRecord(push, {1, 2, 3, 4, 5, 6, 7, 8});
    const auto second = logRecord(claim, {9, 10, 11, 12});
    log.insert(log.end(), second.begin(), second.end());
    writeSeed(dir, "log_wellformed", 0, log);

    // Truncated record: a torn tail mid-body — replay keeps the intact
    // prefix and must not throw.
    writeSeed(dir, "log_truncated_record", 0,
              {log.begin(), log.end() - 5});

    // Bad CRC with a record *after* it: impossible from a crash, must
    // throw IoError (and never deliver the corrupt body).
    auto badCrc = log;
    badCrc[9] ^= 0x55; // inside record 1's body
    writeSeed(dir, "log_bad_crc", 0, badCrc);

    // Type tag past kWalRecordTypeMax: corruption, not a new version.
    auto badType =
        logRecord(cop::core::kWalRecordTypeMax + 1, {1, 2, 3});
    badType.insert(badType.end(), log.begin(), log.end());
    writeSeed(dir, "log_bad_type", 0, badType);

    // Hostile length prefix: must be refused before any allocation.
    auto hugeLen = log;
    hugeLen[0] = 0xFF;
    hugeLen[1] = 0xFF;
    hugeLen[2] = 0xFF;
    hugeLen[3] = 0x7F;
    writeSeed(dir, "log_huge_len", 0, hugeLen);

    // Zero length: the preallocated (never-written) tail of the log —
    // replay must stop cleanly there, not reject the log.
    std::vector<std::uint8_t> zeroLen(8, 0);
    writeSeed(dir, "log_zero_len_record", 0, zeroLen);

    // -- surface 1: the snapshot container -------------------------------
    const std::vector<std::uint8_t> state = {42, 43, 44, 45, 46};
    writeSeed(dir, "snapshot_wellformed", 1, snapshotImage(state));

    // Count mismatch: header claims more payload bytes than follow.
    auto shortSnap = snapshotImage(state);
    shortSnap.resize(shortSnap.size() - 2);
    writeSeed(dir, "snapshot_count_mismatch", 1, shortSnap);

    // Trailing garbage after the declared payload: also a mismatch.
    auto longSnap = snapshotImage(state);
    longSnap.push_back(0xEE);
    writeSeed(dir, "snapshot_trailing_garbage", 1, longSnap);

    auto snapBadCrc = snapshotImage(state);
    snapBadCrc.back() ^= 0x01;
    writeSeed(dir, "snapshot_bad_crc", 1, snapBadCrc);

    auto snapHuge = snapshotImage(state);
    const std::uint64_t huge = std::uint64_t(-1);
    std::memcpy(snapHuge.data() + 4, &huge, 8);
    writeSeed(dir, "snapshot_huge_len", 1, snapHuge);

    // -- surface 2: the blob codec ---------------------------------------
    std::vector<std::uint8_t> blob(512);
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = std::uint8_t(i / 7);
    const auto frame = cop::util::encode(blob).frame;
    writeSeed(dir, "codec_wellformed", 2, frame);

    // Nested frame: a valid frame as the *payload* of an outer frame,
    // then the outer's rawSize corrupted — the decoder must bound its
    // work by the outer header, never recurse into or trust the inner.
    auto nested = cop::util::encode(frame).frame;
    nested[6] ^= 0x80; // corrupt outer rawSize
    writeSeed(dir, "codec_nested_frame", 2, nested);

    writeSeed(dir, "codec_truncated", 2,
              {frame.begin(), frame.begin() + long(frame.size() / 2)});

    auto frameTrailing = frame;
    frameTrailing.push_back(0x00);
    writeSeed(dir, "codec_trailing_garbage", 2, frameTrailing);

    auto frameHuge = frame;
    std::memcpy(frameHuge.data() + 6, &huge, 8);
    writeSeed(dir, "codec_huge_rawsize", 2, frameHuge);

    std::printf("wrote seed corpus to %s\n", dir.string().c_str());
    return 0;
}

int replayFile(const fs::path& file) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.string().c_str());
        return 1;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc >= 3 && std::string(argv[1]) == "--generate")
        return generateCorpus(argv[2]);
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <corpus-file-or-dir>...\n"
                     "       %s --generate <dir>\n",
                     argv[0], argv[0]);
        return 2;
    }
    std::size_t replayed = 0;
    for (int i = 1; i < argc; ++i) {
        const fs::path p(argv[i]);
        if (fs::is_directory(p)) {
            for (const auto& entry : fs::directory_iterator(p)) {
                if (!entry.is_regular_file()) continue;
                if (replayFile(entry.path()) != 0) return 1;
                ++replayed;
            }
        } else {
            if (replayFile(p) != 0) return 1;
            ++replayed;
        }
    }
    std::printf("replayed %zu corpus inputs clean\n", replayed);
    return replayed == 0 ? 1 : 0; // an empty corpus is a broken setup
}

#endif // !COP_FUZZ_LIBFUZZER
